package pfs

import (
	"bytes"
	"testing"

	"atomio/internal/interval"
	"atomio/internal/sim"
)

func ext(off, l int64) interval.Extent { return interval.Extent{Off: off, Len: l} }

func basicFS(servers int) *FileSystem {
	return MustNew(Config{
		Servers:     servers,
		StripeSize:  16,
		ServerModel: sim.LinearCost{Latency: 10 * sim.Microsecond, BytesPerSec: 1 << 20},
		ClientModel: sim.LinearCost{Latency: 5 * sim.Microsecond, BytesPerSec: 8 << 20},
		SegOverhead: sim.Microsecond,
		StoreData:   true,
	})
}

func TestWriteReadRoundTrip(t *testing.T) {
	fs := basicFS(2)
	clk := sim.NewClock(0)
	c, err := fs.Open("f", 0, clk)
	if err != nil {
		t.Fatal(err)
	}
	c.WriteAt(10, []byte("hello world"))
	buf := make([]byte, 11)
	c.ReadAt(10, buf)
	if string(buf) != "hello world" {
		t.Fatalf("read back %q", buf)
	}
	if c.BytesWritten() != 11 || c.BytesRead() != 11 {
		t.Fatalf("counters = %d/%d", c.BytesWritten(), c.BytesRead())
	}
	if clk.Now() == 0 {
		t.Fatal("I/O charged no virtual time")
	}
}

func TestUnwrittenBytesReadZero(t *testing.T) {
	fs := basicFS(1)
	c, _ := fs.Open("f", 0, sim.NewClock(0))
	c.WriteAt(100, []byte{1, 2, 3})
	buf := make([]byte, 6)
	c.ReadAt(98, buf)
	want := []byte{0, 0, 1, 2, 3, 0}
	if !bytes.Equal(buf, want) {
		t.Fatalf("read = %v, want %v", buf, want)
	}
}

func TestWriteCrossesChunkBoundary(t *testing.T) {
	fs := basicFS(1)
	c, _ := fs.Open("f", 0, sim.NewClock(0))
	data := bytes.Repeat([]byte{7}, 3*storeChunk)
	c.WriteAt(storeChunk-5, data)
	buf := make([]byte, len(data))
	c.ReadAt(storeChunk-5, buf)
	if !bytes.Equal(buf, data) {
		t.Fatal("cross-chunk write corrupted")
	}
}

func TestSnapshotAndFileSize(t *testing.T) {
	fs := basicFS(1)
	c, _ := fs.Open("f", 0, sim.NewClock(0))
	c.WriteAt(0, []byte("abcdef"))
	snap, err := fs.Snapshot("f", ext(2, 3))
	if err != nil || string(snap) != "cde" {
		t.Fatalf("snapshot = %q, %v", snap, err)
	}
	size, err := fs.FileSize("f")
	if err != nil || size != 6 {
		t.Fatalf("size = %d, %v", size, err)
	}
	if _, err := fs.Snapshot("missing", ext(0, 1)); err == nil {
		t.Fatal("expected error for missing file")
	}
}

func TestRemove(t *testing.T) {
	fs := basicFS(1)
	if _, err := fs.Open("f", 0, sim.NewClock(0)); err != nil {
		t.Fatal(err)
	}
	if err := fs.Remove("f"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Remove("f"); err == nil {
		t.Fatal("double remove should fail")
	}
}

func TestWriteVSegmentsLandSeparately(t *testing.T) {
	fs := basicFS(4)
	c, _ := fs.Open("f", 0, sim.NewClock(0))
	c.WriteV([]Segment{
		{Off: 0, Data: []byte("AA")},
		{Off: 10, Data: []byte("BB")},
		{Off: 20, Data: []byte("CC")},
	})
	snap, _ := fs.Snapshot("f", ext(0, 22))
	if string(snap[0:2]) != "AA" || string(snap[10:12]) != "BB" || string(snap[20:22]) != "CC" {
		t.Fatalf("snapshot = %q", snap)
	}
	if snap[5] != 0 {
		t.Fatal("hole written")
	}
}

func TestStripingSpreadsLoad(t *testing.T) {
	// 4 servers, stripe 16: a 64-byte write at 0 touches all 4 equally.
	fs := basicFS(4)
	c, _ := fs.Open("f", 0, sim.NewClock(0))
	c.WriteAt(0, make([]byte, 64))
	for i := 0; i < 4; i++ {
		ops, busy := fs.Servers().Member(i).Stats()
		if ops != 1 || busy == 0 {
			t.Fatalf("server %d: ops=%d busy=%v", i, ops, busy)
		}
	}
}

func TestClientAffinityUsesOneServer(t *testing.T) {
	cfg := basicFS(4).Config()
	cfg.Mode = ClientAffinity
	fs := MustNew(cfg)
	c, _ := fs.Open("f", 2, sim.NewClock(0)) // rank 2 -> server 2
	c.WriteAt(0, make([]byte, 64))
	for i := 0; i < 4; i++ {
		ops, _ := fs.Servers().Member(i).Stats()
		want := int64(0)
		if i == 2 {
			want = 1
		}
		if ops != want {
			t.Fatalf("server %d ops = %d, want %d", i, ops, want)
		}
	}
}

func TestServerContentionSerializes(t *testing.T) {
	// Two clients writing the same amount to a 1-server FS must drain in
	// the sum of their service times.
	fs := basicFS(1)
	c0, _ := fs.Open("f", 0, sim.NewClock(0))
	c1, _ := fs.Open("f", 1, sim.NewClock(0))
	c0.WriteAt(0, make([]byte, 1<<20))
	c1.WriteAt(1<<20, make([]byte, 1<<20))
	svc := sim.LinearCost{Latency: 10 * sim.Microsecond, BytesPerSec: 1 << 20}.Cost(1 << 20)
	if got := fs.Servers().Member(0).FreeAt(); got < 2*svc {
		t.Fatalf("server drained at %v, want >= %v", got, 2*svc)
	}
}

func TestSegOverheadCharged(t *testing.T) {
	fs := basicFS(1)
	clkA := sim.NewClock(0)
	a, _ := fs.Open("f", 0, clkA)
	segs := make([]Segment, 100)
	for i := range segs {
		segs[i] = Segment{Off: int64(i * 10), Data: []byte("x")}
	}
	a.WriteV(segs)
	tv := clkA.Now()

	fs2 := basicFS(1)
	clkB := sim.NewClock(0)
	b, _ := fs2.Open("f", 0, clkB)
	b.WriteAt(0, make([]byte, 100))
	tc := clkB.Now()

	if tv <= tc {
		t.Fatalf("vectored 100-segment write (%v) should cost more than one contiguous write (%v)", tv, tc)
	}
	if tv-tc < 99*sim.Microsecond {
		t.Fatalf("segment overhead under-charged: delta %v", tv-tc)
	}
}

func TestZeroLengthOpsAreFree(t *testing.T) {
	fs := basicFS(1)
	clk := sim.NewClock(0)
	c, _ := fs.Open("f", 0, clk)
	c.WriteAt(0, nil)
	c.ReadAt(0, nil)
	c.WriteV(nil)
	if clk.Now() != 0 {
		t.Fatalf("zero-length ops charged %v", clk.Now())
	}
}

func TestStoreDataOffAccountsTimeOnly(t *testing.T) {
	cfg := basicFS(2).Config()
	cfg.StoreData = false
	fs := MustNew(cfg)
	clk := sim.NewClock(0)
	c, _ := fs.Open("f", 0, clk)
	c.WriteAt(0, make([]byte, 1<<20))
	if clk.Now() == 0 {
		t.Fatal("time not accounted with StoreData=false")
	}
	size, _ := fs.FileSize("f")
	if size != 1<<20 {
		t.Fatalf("size = %d", size)
	}
	snap, _ := fs.Snapshot("f", ext(0, 8))
	if !bytes.Equal(snap, make([]byte, 8)) {
		t.Fatal("dataless store returned bytes")
	}
}

func TestConfigValidation(t *testing.T) {
	slow := sim.LinearCost{Latency: sim.Millisecond}
	cases := []struct {
		name string
		cfg  Config
		ok   bool
	}{
		{"defaults", Config{}, true},
		{"negative servers", Config{Servers: -1}, false},
		{"zero stripe defaults", Config{Mode: RoundRobin}, true},
		{"negative stripe round-robin", Config{StripeSize: -1, Mode: RoundRobin}, false},
		{"negative stripe affinity ok", Config{StripeSize: -1, Mode: ClientAffinity}, true},
		{"nil degraded model", Config{Servers: 2, Degraded: map[int]*sim.LinearCost{0: nil}}, false},
		{"degraded server out of range", Config{Servers: 2, Degraded: map[int]*sim.LinearCost{2: &slow}}, false},
		{"degraded negative server", Config{Servers: 2, Degraded: map[int]*sim.LinearCost{-1: &slow}}, false},
		{"degraded in range", Config{Servers: 2, Degraded: map[int]*sim.LinearCost{1: &slow}}, true},
		{"affinity out of range", Config{Servers: 2, Affinity: []int{0, 2}}, false},
		{"affinity negative", Config{Servers: 2, Affinity: []int{-1}}, false},
		{"affinity in range", Config{Servers: 4, Mode: ClientAffinity, Affinity: []int{3, 0, 3}}, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			verr := tc.cfg.Validate()
			fs, nerr := New(tc.cfg)
			if tc.ok {
				if verr != nil || nerr != nil {
					t.Fatalf("Validate=%v New err=%v, want both nil", verr, nerr)
				}
				if fs == nil {
					t.Fatal("New returned nil fs without error")
				}
			} else {
				if verr == nil || nerr == nil {
					t.Fatalf("Validate=%v New err=%v, want both non-nil", verr, nerr)
				}
				if fs != nil {
					t.Fatal("New returned a fs alongside an error")
				}
			}
		})
	}
}

func TestModeString(t *testing.T) {
	if RoundRobin.String() != "round-robin" || ClientAffinity.String() != "client-affinity" {
		t.Fatal("mode strings wrong")
	}
	if StripeMode(9).String() == "" {
		t.Fatal("unknown mode should still print")
	}
}

func TestWrittenExtentsTrackStores(t *testing.T) {
	fs := basicFS(1)
	clock := sim.NewClock(0)
	c, err := fs.Open("w.dat", 0, clock)
	if err != nil {
		t.Fatal(err)
	}
	c.WriteAt(100, []byte("abcd"))
	c.WriteAt(104, []byte("efgh")) // touching: coalesces
	c.WriteAt(1<<20, []byte("zz")) // far hole in between
	got, err := fs.WrittenExtents("w.dat")
	if err != nil {
		t.Fatal(err)
	}
	want := interval.List{ext(100, 8), ext(1<<20, 2)}
	if !got.Equal(want) {
		t.Fatalf("written extents = %v, want %v", got, want)
	}

	// A sparse read spanning the hole: written parts return data, the hole
	// reads zero even into a dirty buffer.
	buf := make([]byte, 1<<20+2-100)
	for i := range buf {
		buf[i] = 0xff
	}
	c.ReadAt(100, buf)
	if string(buf[:8]) != "abcdefgh" || string(buf[len(buf)-2:]) != "zz" {
		t.Fatalf("sparse read edges = %q %q", buf[:8], buf[len(buf)-2:])
	}
	for i := 8; i < len(buf)-2; i++ {
		if buf[i] != 0 {
			t.Fatalf("hole byte %d = %#x, want 0", i, buf[i])
		}
	}
}

func TestWrittenExtentsEmptyWhenDataless(t *testing.T) {
	cfg := basicFS(1).Config()
	cfg.StoreData = false
	fs := MustNew(cfg)
	c, err := fs.Open("d.dat", 0, sim.NewClock(0))
	if err != nil {
		t.Fatal(err)
	}
	c.WriteAt(0, []byte("data"))
	got, err := fs.WrittenExtents("d.dat")
	if err != nil || len(got) != 0 {
		t.Fatalf("dataless written extents = %v, %v", got, err)
	}
	buf := []byte{1, 2, 3, 4}
	c.ReadAt(0, buf)
	if !bytes.Equal(buf, []byte{0, 0, 0, 0}) {
		t.Fatalf("dataless read = %v, want zeros", buf)
	}
	if n, err := fs.FileSize("d.dat"); err != nil || n != 4 {
		t.Fatalf("size = %d, %v", n, err)
	}
}
