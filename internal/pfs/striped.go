package pfs

import (
	"sort"
	"sync"

	"atomio/internal/interval"
	"atomio/internal/interval/index"
)

// serverStore is one I/O server's private slice of a file's bytes: its own
// sparse chunk store and written-extent index. Disjoint-server traffic
// never contends on a shared store lock, and per-server structures stay a
// factor of Servers smaller than the shared store's.
type serverStore struct {
	mu      sync.Mutex
	chunks  map[int64][]byte
	written index.Set
	// segs records every affinity-mode write landed on this server as
	// (extent → global write sequence), the metadata cross-server merge
	// reads resolve overlaps with. Unused in round-robin mode, where a
	// byte has exactly one home server.
	segs index.Index[int64]
}

// stripedStore is the per-server content layout: the configured byte→server
// mapping routes storage as well as queueing.
//
// In RoundRobin mode the stripes partition the byte space — every byte has
// exactly one home server — so writes scatter and reads gather stripe
// pieces, and the split is semantics-preserving by construction: each
// server's store holds exactly the shared store's bytes for its stripes,
// overlapping writes to a byte meet in that byte's home server and land in
// arrival order, exactly as in the shared store.
//
// In ClientAffinity mode a write lands wholly on the writer's boot-assigned
// server, so the same byte may be stored on several servers (one per
// writer). Every write takes a store-wide sequence number, and a read
// merges across all servers: it gathers the overlapping write records,
// replays them in sequence order, and copies each winner's bytes from its
// server — the cross-server merge that makes the layout observably
// identical to the shared store, where the same writes land in the same
// (sequence) order on one store.
//
// File size and written extents are resolved by cheap cross-server merges:
// size stays file-level (see file), extents are the normalized union of the
// per-server indexes.
type stripedStore struct {
	mode     StripeMode
	stripe   int64
	affinity []int
	servers  []*serverStore

	seqMu   sync.Mutex
	nextSeq int64
}

func newStripedStore(cfg Config) *stripedStore {
	st := &stripedStore{
		mode:     cfg.Mode,
		stripe:   cfg.StripeSize,
		affinity: cfg.Affinity,
		servers:  make([]*serverStore, cfg.Servers),
	}
	for i := range st.servers {
		st.servers[i] = &serverStore{chunks: make(map[int64][]byte)}
	}
	return st
}

// serverForRank is the affinity-mode rank→server map (mirrors
// FileSystem.serverFor; duplicated so the store stays self-contained).
func (st *stripedStore) serverForRank(rank int) int {
	if len(st.affinity) > 0 {
		return st.affinity[rank%len(st.affinity)]
	}
	return rank % len(st.servers)
}

// eachStripePiece splits [off, off+n) at stripe boundaries and calls f with
// each piece and its round-robin home server. It is the single definition
// of the stripe→server map, shared by queue routing
// (Client.queueServerService) and storage routing (stripedStore) — the two
// must never diverge.
func eachStripePiece(stripe int64, servers int, off, n int64, f func(server int, off, n int64)) {
	for n > 0 {
		inStripe := stripe - off%stripe
		take := n
		if take > inStripe {
			take = inStripe
		}
		f(int((off/stripe)%int64(servers)), off, take)
		off += take
		n -= take
	}
}

func (st *stripedStore) write(off int64, data []byte, rank int) {
	if st.mode == ClientAffinity {
		sv := st.servers[st.serverForRank(rank)]
		sv.mu.Lock()
		// The sequence is taken under the server lock, so within one
		// server chunk-content order and sequence order agree — which is
		// what lets merge reads treat "highest sequence" and "latest
		// arrival" as the same thing.
		st.seqMu.Lock()
		seq := st.nextSeq
		st.nextSeq++
		st.seqMu.Unlock()
		e := interval.Extent{Off: off, Len: int64(len(data))}
		chunkWrite(sv.chunks, off, data)
		sv.written.Add(e)
		// Prune dead records: an older same-server record fully inside e
		// can never win a merge again — its chunk bytes are overwritten
		// and its sequence is lower — so the index stays proportional to
		// the live (visible) write extents, not to write history.
		type deadRec struct {
			ext interval.Extent
			h   index.Handle
		}
		var dead []deadRec
		sv.segs.Overlapping(e, func(ext interval.Extent, h index.Handle, _ int64) bool {
			if e.ContainsExtent(ext) {
				dead = append(dead, deadRec{ext: ext, h: h})
			}
			return true
		})
		for _, d := range dead {
			sv.segs.Delete(d.ext, d.h)
		}
		sv.segs.Insert(e, seq)
		sv.mu.Unlock()
		return
	}
	eachStripePiece(st.stripe, len(st.servers), off, int64(len(data)), func(server int, pieceOff, n int64) {
		sv := st.servers[server]
		sv.mu.Lock()
		chunkWrite(sv.chunks, pieceOff, data[pieceOff-off:pieceOff-off+n])
		sv.written.Add(interval.Extent{Off: pieceOff, Len: n})
		sv.mu.Unlock()
	})
}

func (st *stripedStore) read(off int64, buf []byte) {
	if st.mode == ClientAffinity {
		st.mergeRead(off, buf)
		return
	}
	eachStripePiece(st.stripe, len(st.servers), off, int64(len(buf)), func(server int, pieceOff, n int64) {
		sv := st.servers[server]
		sv.mu.Lock()
		coveredRead(&sv.written, sv.chunks, pieceOff, buf[pieceOff-off:pieceOff-off+n])
		sv.mu.Unlock()
	})
}

// mergeRead is the affinity-mode scatter-gather: collect every server's
// write records overlapping the request, replay them in global sequence
// order, and copy each record's overlap from its server's chunks. A
// record's chunk bytes are its own data wherever it is the highest-sequence
// record (later same-server writes both overwrite the chunks and carry a
// higher sequence), so the last copy into any byte is the globally latest
// write — the shared store's arrival-order semantics.
func (st *stripedStore) mergeRead(off int64, buf []byte) {
	clear(buf)
	req := interval.Extent{Off: off, Len: int64(len(buf))}
	type rec struct {
		ext    interval.Extent
		seq    int64
		server int
	}
	var recs []rec
	for i, sv := range st.servers {
		sv.mu.Lock()
		sv.segs.Overlapping(req, func(e interval.Extent, _ index.Handle, seq int64) bool {
			recs = append(recs, rec{ext: e.Intersect(req), seq: seq, server: i})
			return true
		})
		sv.mu.Unlock()
	}
	sort.Slice(recs, func(i, j int) bool { return recs[i].seq < recs[j].seq })
	for _, r := range recs {
		sv := st.servers[r.server]
		sv.mu.Lock()
		chunkRead(sv.chunks, r.ext.Off, buf[r.ext.Off-off:r.ext.End()-off])
		sv.mu.Unlock()
	}
}

func (st *stripedStore) extents() interval.List {
	var all interval.List
	for _, sv := range st.servers {
		sv.mu.Lock()
		all = append(all, sv.written.Extents()...)
		sv.mu.Unlock()
	}
	return all.Normalize()
}
