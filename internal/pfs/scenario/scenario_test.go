package scenario

import (
	"strings"
	"testing"

	"atomio/internal/pfs"
	"atomio/internal/sim"
)

func baseCfg() pfs.Config {
	return pfs.Config{
		Servers:     4,
		StripeSize:  16,
		Mode:        pfs.ClientAffinity,
		ServerModel: sim.LinearCost{Latency: 100 * sim.Microsecond, BytesPerSec: 1 << 20},
	}
}

func TestHealthyIsIdentity(t *testing.T) {
	cfg, err := Healthy().Apply(baseCfg())
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Servers != 4 || len(cfg.Degraded) != 0 || len(cfg.Affinity) != 0 {
		t.Fatalf("healthy perturbed the config: %+v", cfg)
	}
	if Healthy().Perturbs() {
		t.Fatal("healthy should not report perturbing")
	}
}

func TestSlowServerDegradesModel(t *testing.T) {
	p := SlowServer(2, 4)
	if !p.Perturbs() {
		t.Fatal("slow server must report perturbing")
	}
	cfg, err := p.Apply(baseCfg())
	if err != nil {
		t.Fatal(err)
	}
	m := cfg.Degraded[2]
	if m == nil {
		t.Fatal("server 2 not degraded")
	}
	if m.Latency != 400*sim.Microsecond || m.BytesPerSec != (1<<20)/4 {
		t.Fatalf("degraded model %+v, want 4x latency and 1/4 bandwidth", *m)
	}
	if cfg.Degraded[0] != nil || cfg.Degraded[1] != nil || cfg.Degraded[3] != nil {
		t.Fatal("healthy servers degraded")
	}
}

func TestSlowServerRejectsBadFactor(t *testing.T) {
	p := Profile{Name: "bad", Slow: map[int]float64{0: 0}}
	if _, err := p.Apply(baseCfg()); err == nil {
		t.Fatal("zero slow factor must be rejected")
	}
}

func TestHotSpotSkewsAffinity(t *testing.T) {
	p := HotSpot(0, 4)
	cfg, err := p.Apply(baseCfg())
	if err != nil {
		t.Fatal(err)
	}
	hot := 0
	for _, s := range cfg.Affinity {
		if s == 0 {
			hot++
		}
	}
	if hot != 2 || len(cfg.Affinity) != 4 {
		t.Fatalf("hotspot affinity %v, want half pointing at server 0", cfg.Affinity)
	}
}

func TestHotSpotNeedsAffinityMode(t *testing.T) {
	cfg := baseCfg()
	cfg.Mode = pfs.RoundRobin
	if _, err := HotSpot(0, 4).Apply(cfg); err == nil ||
		!strings.Contains(err.Error(), "client-affinity") {
		t.Fatal("affinity override on round-robin config must be rejected")
	}
}

func TestRebalanceChangesServerCount(t *testing.T) {
	cfg, err := Rebalance(2).Apply(baseCfg())
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Servers != 2 {
		t.Fatalf("servers = %d, want 2", cfg.Servers)
	}
	if Rebalance(2).Perturbs() {
		t.Fatal("a pure rebalance is a healthy configuration, not a perturbation")
	}
}

func TestApplyValidatesResult(t *testing.T) {
	// Rebalancing below a degraded server's index must fail validation.
	p := Profile{Name: "broken", Servers: 2, Slow: map[int]float64{3: 2}}
	if _, err := p.Apply(baseCfg()); err == nil {
		t.Fatal("degraded index beyond rebalanced server count must be rejected")
	}
}

func TestDegradeNeverReachesInfinitelyFast(t *testing.T) {
	m := sim.LinearCost{Latency: sim.Microsecond, BytesPerSec: 1 << 20}
	d := Degrade(m, 1e9) // far beyond the model's bandwidth
	if d.BytesPerSec < 1 {
		t.Fatalf("degraded BytesPerSec = %d; 0 means infinitely fast to sim.LinearCost", d.BytesPerSec)
	}
	// A genuinely infinite model (0) stays infinite: only latency scales.
	if d := Degrade(sim.LinearCost{Latency: sim.Microsecond}, 4); d.BytesPerSec != 0 {
		t.Fatalf("infinite-bandwidth model gained a bandwidth: %d", d.BytesPerSec)
	}
}
