// Package scenario defines per-server perturbation profiles for the
// striped multi-server file system: a named, declarative description of how
// a run's I/O servers deviate from the healthy uniform configuration — a
// slow (degraded) server, a hot server absorbing a skewed share of the
// client affinity map, or a rebalanced server count.
//
// A profile is applied to a pfs.Config just before the file system is
// built, so the same experiment grid can be swept across scenarios (see
// runner.DegradedGrid and `figure8 -degraded`). Healthy profiles leave the
// simulation's determinism contract intact; profiles that slow servers or
// skew affinity change virtual service times and are explicitly
// non-comparable to healthy output — they answer "what does this failure
// cost", not "what does the paper's Figure 8 show".
package scenario

import (
	"fmt"
	"sort"

	"atomio/internal/pfs"
	"atomio/internal/sim"
)

// Profile is one per-server perturbation: any combination of a server-count
// override, per-server service slowdowns, and an affinity-map override.
// The zero value (or Healthy()) perturbs nothing.
type Profile struct {
	// Name labels the scenario in cell IDs and result records.
	Name string
	// Servers, when positive, overrides the configured I/O-server count —
	// the rebalancing knob (fewer servers after a failure, more after an
	// expansion).
	Servers int
	// Slow maps a server index to a service-time slowdown factor (> 1 is
	// slower: latency multiplied, bandwidth divided).
	Slow map[int]float64
	// Affinity overrides the ClientAffinity rank→server map (rank r is
	// served by Affinity[r % len(Affinity)]). Only meaningful on
	// affinity-mode configurations.
	Affinity []int
}

// Healthy is the identity profile: the unperturbed configuration.
func Healthy() Profile { return Profile{Name: "healthy"} }

// SlowServer degrades one server's service model by factor (latency ×
// factor, bandwidth ÷ factor) — the single-slow-server scenario.
func SlowServer(server int, factor float64) Profile {
	return Profile{
		Name: fmt.Sprintf("slow%dx%g", server, factor),
		Slow: map[int]float64{server: factor},
	}
}

// HotSpot skews a servers-wide affinity map so every second client lands on
// the hot server while the rest keep their round-robin boot assignment —
// the hot-server scenario for ClientAffinity file systems.
func HotSpot(hot, servers int) Profile {
	aff := make([]int, servers)
	for i := range aff {
		if i%2 == 0 {
			aff[i] = hot
		} else {
			aff[i] = i
		}
	}
	return Profile{Name: fmt.Sprintf("hotspot%d", hot), Affinity: aff}
}

// Rebalance changes the server count with every server healthy — shrink
// after failures, grow after expansion.
func Rebalance(servers int) Profile {
	return Profile{Name: fmt.Sprintf("servers%d", servers), Servers: servers}
}

// Degrade scales a service model by factor: latency multiplied, sustained
// bandwidth divided. factor must be positive. A finite bandwidth never
// degrades to zero — sim.LinearCost treats BytesPerSec == 0 as infinitely
// fast, the opposite of degraded — so it bottoms out at 1 byte/s.
func Degrade(m sim.LinearCost, factor float64) sim.LinearCost {
	out := sim.LinearCost{
		Latency:     sim.VTime(float64(m.Latency) * factor),
		BytesPerSec: int64(float64(m.BytesPerSec) / factor),
	}
	if m.BytesPerSec > 0 && out.BytesPerSec < 1 {
		out.BytesPerSec = 1
	}
	return out
}

// Apply returns cfg with the profile's perturbations applied, validating
// the result. Slow factors must be positive; affinity overrides require an
// affinity-mode configuration.
func (p Profile) Apply(cfg pfs.Config) (pfs.Config, error) {
	if p.Servers > 0 {
		cfg.Servers = p.Servers
	}
	if len(p.Slow) > 0 {
		// Walk the slow set in ascending server order so a profile with
		// several bad factors always rejects on the same one.
		servers := make([]int, 0, len(p.Slow))
		for server := range p.Slow {
			servers = append(servers, server)
		}
		sort.Ints(servers)
		degraded := make(map[int]*sim.LinearCost, len(p.Slow))
		for _, server := range servers {
			factor := p.Slow[server]
			if factor <= 0 {
				return cfg, fmt.Errorf("scenario %s: slow factor for server %d must be positive, got %g",
					p.Name, server, factor)
			}
			m := Degrade(cfg.ServerModel, factor)
			degraded[server] = &m
		}
		cfg.Degraded = degraded
	}
	if len(p.Affinity) > 0 {
		if cfg.Mode != pfs.ClientAffinity {
			return cfg, fmt.Errorf("scenario %s: affinity override needs a client-affinity file system, got %s",
				p.Name, cfg.Mode)
		}
		cfg.Affinity = append([]int(nil), p.Affinity...)
	}
	if err := cfg.Validate(); err != nil {
		return cfg, fmt.Errorf("scenario %s: %w", p.Name, err)
	}
	return cfg, nil
}

// Perturbs reports whether the profile changes virtual timing relative to
// the healthy configuration (slow servers or skewed affinity); such runs
// are explicitly non-comparable to healthy output. Pure rebalances also
// change timing but remain ordinary healthy configurations at their new
// server count.
func (p Profile) Perturbs() bool { return len(p.Slow) > 0 || len(p.Affinity) > 0 }
