package pfs

import (
	"testing"

	"atomio/internal/sim"
)

// TestDegradedServerSlowsItsQueue pins the per-server service-model
// override: the same write costs more on a degraded server and the healthy
// servers are unaffected.
func TestDegradedServerSlowsItsQueue(t *testing.T) {
	base := basicFS(2).Config()
	slow := sim.LinearCost{Latency: 10 * base.ServerModel.Latency, BytesPerSec: base.ServerModel.BytesPerSec / 10}
	cfg := base
	cfg.Degraded = map[int]*sim.LinearCost{0: &slow}
	fsH := MustNew(base)
	fsD := MustNew(cfg)

	// Stripe 16, 2 servers: [0,16) lands on server 0, [16,32) on server 1.
	write := func(fs *FileSystem, off int64) sim.VTime {
		clk := sim.NewClock(0)
		c, err := fs.Open("f", 0, clk)
		if err != nil {
			t.Fatal(err)
		}
		c.WriteAt(off, make([]byte, 16))
		return clk.Now()
	}
	if h, d := write(fsH, 0), write(fsD, 0); d <= h {
		t.Fatalf("degraded server 0 write took %v, healthy %v; want slower", d, h)
	}
	if h, d := write(fsH, 16), write(fsD, 16); d != h {
		t.Fatalf("healthy server 1 write took %v on degraded fs, %v on healthy; want equal", d, h)
	}
}

// TestAffinityOverrideRoutesQueueing pins the skewed affinity map: ranks
// route to the servers the map names, not to rank % Servers.
func TestAffinityOverrideRoutesQueueing(t *testing.T) {
	cfg := basicFS(4).Config()
	cfg.Mode = ClientAffinity
	cfg.Affinity = []int{3, 3} // every rank lands on server 3
	fs := MustNew(cfg)
	for rank := 0; rank < 4; rank++ {
		c, _ := fs.Open("f", rank, sim.NewClock(0))
		c.WriteAt(int64(rank)*64, make([]byte, 64))
	}
	for i, s := range fs.ServerStats() {
		wantBytes := int64(0)
		if i == 3 {
			wantBytes = 4 * 64
		}
		if s.Bytes != wantBytes {
			t.Fatalf("server %d moved %d bytes, want %d (stats %+v)", i, s.Bytes, wantBytes, s)
		}
	}
}

// TestServerStatsAccumulate pins the stats layer: requests, bytes, busy
// time and drain time per server for a striped write.
func TestServerStatsAccumulate(t *testing.T) {
	fs := basicFS(4) // stripe 16
	c, _ := fs.Open("f", 0, sim.NewClock(0))
	c.WriteAt(0, make([]byte, 128)) // 2 stripes per server
	c.ReadAt(0, make([]byte, 64))   // 1 stripe per server
	for _, s := range fs.ServerStats() {
		if s.Requests != 3 {
			t.Fatalf("server %d requests = %d, want 3 (2 write stripes + 1 read stripe)", s.Server, s.Requests)
		}
		if s.Bytes != 48 {
			t.Fatalf("server %d bytes = %d, want 48", s.Server, s.Bytes)
		}
		if s.Busy <= 0 || s.FreeAt < s.Busy {
			t.Fatalf("server %d occupancy implausible: %+v", s.Server, s)
		}
	}
}
