// Package pfs simulates the parallel file systems the paper evaluates on
// (ENFS on ASCI Cplant, SGI XFS, IBM GPFS): a set of I/O servers serving a
// shared striped file, accessed by per-process clients that may cache with
// the read-ahead and write-behind policies the paper discusses in §3.
//
// The simulator moves real bytes (so atomicity violations are observable in
// actual file content) while accounting virtual time on the clients' clocks
// and on per-server FCFS queues (see package sim). Aggregate bandwidth
// reported by the experiment harness is data volume divided by the virtual
// makespan.
package pfs

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"atomio/internal/obs"
	"atomio/internal/sim"
	"atomio/internal/sim/fault"
)

// StripeMode selects how file bytes map to I/O servers.
type StripeMode int

const (
	// RoundRobin stripes the file across all servers in StripeSize units,
	// as GPFS and striped scratch file systems do.
	RoundRobin StripeMode = iota
	// ClientAffinity binds each client to the single server its node was
	// assigned at boot, as Cplant's ENFS does ("each compute node is
	// mapped to one of the I/O servers in a round-robin selection scheme
	// at boot time").
	ClientAffinity
)

// String names the mode.
func (m StripeMode) String() string {
	switch m {
	case RoundRobin:
		return "round-robin"
	case ClientAffinity:
		return "client-affinity"
	default:
		return fmt.Sprintf("StripeMode(%d)", int(m))
	}
}

// Config describes a simulated file system instance.
type Config struct {
	// Servers is the number of I/O servers. Must be >= 1.
	Servers int
	// StripeSize is the striping unit in bytes for RoundRobin mode.
	StripeSize int64
	// Mode selects the byte-to-server mapping.
	Mode StripeMode

	// ServerModel is the per-request service cost charged on a server's
	// queue (request handling latency plus bytes at the server's disk or
	// RAID bandwidth).
	ServerModel sim.LinearCost
	// ClientModel is the per-request cost charged serially at the client
	// (network link plus client-side request processing).
	ClientModel sim.LinearCost
	// SegOverhead is the extra client-side cost per additional
	// non-contiguous segment in a vectored request — the per-row cost
	// that dominates the column-wise pattern.
	SegOverhead sim.VTime

	// StoreData controls whether written bytes are materialized. Large
	// benchmark runs disable it to account time without allocating the
	// full file; correctness tests leave it on.
	StoreData bool

	// WAL enables the per-file write-ahead intent log: collective writes
	// log their full mapped request before touching the servers, and
	// Recover replays logged intents over fault damage (see fault.go).
	// Off by default — healthy runs pay no logging cost.
	WAL bool

	// AtomicListIO grants the file system the hypothetical capability the
	// paper discusses in §3.2: POSIX atomicity extended to
	// lio_listio-style vectored requests. When set, Client.WriteVAtomic
	// executes a whole multi-segment write atomically with respect to
	// every other atomic vectored write on the same file (the file system
	// internally serializes such calls). No 2003 file system provided
	// this; it exists here to evaluate the paper's "if POSIX atomicity is
	// extended to lio_listio(), the MPI atomicity can be guaranteed"
	// observation.
	AtomicListIO bool

	// Cache configures the per-client cache. A zero value disables
	// caching (every request goes to the servers).
	Cache CacheConfig

	// SharedStore stores file bytes in the pre-striping single shared
	// store instead of per-server stores. The two layouts are observably
	// identical on every healthy configuration (stripes partition the byte
	// space; affinity merges resolve by global write order), which is why
	// the shared store survives as the property-test oracle the per-server
	// subsystem is pinned against.
	SharedStore bool

	// Degraded overrides the service model of individual servers (index →
	// model), the per-server perturbation hook behind slow-server
	// scenarios. Entries must be non-nil and in [0, Servers). A run with
	// degraded servers is explicitly non-comparable to the healthy
	// simulator output.
	Degraded map[int]*sim.LinearCost

	// Affinity overrides ClientAffinity's boot-time rank→server map:
	// client rank r is served by Affinity[r % len(Affinity)]. Empty keeps
	// the round-robin assignment r % Servers. Entries must be in
	// [0, Servers). Skewed maps model a hot server absorbing a
	// disproportionate share of the clients.
	Affinity []int
}

func (c Config) withDefaults() Config {
	if c.Servers == 0 {
		c.Servers = 1
	}
	if c.StripeSize == 0 {
		c.StripeSize = 64 << 10
	}
	return c
}

// Validate reports whether the configuration (after defaulting of zero
// Servers and StripeSize) describes a constructible file system. It is the
// non-panicking counterpart of New's setup check, for callers assembling
// configs from external input.
func (c Config) Validate() error {
	return c.withDefaults().validate()
}

func (c Config) validate() error {
	if c.Servers < 1 {
		return fmt.Errorf("pfs: Servers must be >= 1, got %d", c.Servers)
	}
	if c.Mode == RoundRobin && c.StripeSize < 1 {
		return fmt.Errorf("pfs: StripeSize must be >= 1 in round-robin mode, got %d", c.StripeSize)
	}
	// Check degraded entries in ascending server order so a config with
	// several bad entries always reports the same one.
	degraded := make([]int, 0, len(c.Degraded))
	for server := range c.Degraded {
		degraded = append(degraded, server)
	}
	sort.Ints(degraded)
	for _, server := range degraded {
		if server < 0 || server >= c.Servers {
			return fmt.Errorf("pfs: degraded server %d out of range [0, %d)", server, c.Servers)
		}
		if c.Degraded[server] == nil {
			return fmt.Errorf("pfs: degraded server %d has a nil cost model", server)
		}
	}
	for i, server := range c.Affinity {
		if server < 0 || server >= c.Servers {
			return fmt.Errorf("pfs: affinity entry %d maps to server %d, out of range [0, %d)",
				i, server, c.Servers)
		}
	}
	return nil
}

// FileSystem is one simulated parallel file system instance shared by every
// client of a run.
type FileSystem struct {
	cfg     Config
	servers *sim.Pool
	models  []sim.LinearCost // per-server service models (Degraded applied)
	stats   []serverCounter  // per-server request/byte counters
	coord   sim.Coord
	fault   *fault.Injector // nil on healthy runs
	obs     *obs.Recorder   // nil unless event tracing is on

	// qdPending tracks, per server, the end times of bookings not yet
	// finished — the live queue-depth gauge. Ends are monotone per server
	// (sim.Resource's free time only grows), so a FIFO suffices. Guarded
	// by qdMu; only touched when obs is armed.
	qdMu      sync.Mutex
	qdPending [][]sim.VTime

	mu    sync.Mutex
	files map[string]*file
}

// serverCounter accumulates one server's traffic. Counters are atomic so
// concurrent rank goroutines can book without sharing the pool mutexes.
type serverCounter struct {
	bytes    atomic.Int64
	requests atomic.Int64
}

// New creates a file system, or returns an error describing why the
// configuration is invalid.
func New(cfg Config) (*FileSystem, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	models := make([]sim.LinearCost, cfg.Servers)
	for i := range models {
		models[i] = cfg.ServerModel
		if m := cfg.Degraded[i]; m != nil {
			models[i] = *m
		}
	}
	return &FileSystem{
		cfg:     cfg,
		servers: sim.NewPool("ioserver", cfg.Servers),
		models:  models,
		stats:   make([]serverCounter, cfg.Servers),
		files:   make(map[string]*file),
	}, nil
}

// MustNew is New panicking on an invalid configuration, for tests and
// examples whose configurations are static.
func MustNew(cfg Config) *FileSystem {
	fs, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return fs
}

// Config returns the file system's configuration.
func (fs *FileSystem) Config() Config { return fs.cfg }

// SetCoord routes server-queue bookings through a determinism coordinator
// (see sim.Coord); client ranks double as coordinator actor ids. Call before
// the run starts.
func (fs *FileSystem) SetCoord(c sim.Coord) { fs.coord = c }

// SetObs arms event tracing and the queue-depth gauge. Call before the run
// starts (alongside SetCoord); nil disarms. pfs events put the server index
// in Peer.
func (fs *FileSystem) SetObs(o *obs.Recorder) {
	fs.obs = o
	if o != nil && fs.qdPending == nil {
		fs.qdPending = make([][]sim.VTime, fs.cfg.Servers)
	}
}

// noteBooking records one server booking ending at end, retires bookings
// finished by now, and returns the resulting queue depth (this booking
// included). Bookings are admitted in deterministic virtual-time order in
// coordinated runs, so the depth sequence is deterministic too.
func (fs *FileSystem) noteBooking(server int, now, end sim.VTime) int64 {
	fs.qdMu.Lock()
	defer fs.qdMu.Unlock()
	q := fs.qdPending[server]
	for len(q) > 0 && q[0] <= now {
		q = q[1:]
	}
	q = append(q, end)
	fs.qdPending[server] = q
	return int64(len(q))
}

// Servers exposes the server pool (for utilization reporting in benches).
func (fs *FileSystem) Servers() *sim.Pool { return fs.servers }

// lookup returns the named file, creating it if requested.
func (fs *FileSystem) lookup(name string, create bool) (*file, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	f, ok := fs.files[name]
	if !ok {
		if !create {
			return nil, fmt.Errorf("pfs: file %q does not exist", name)
		}
		f = fs.newFile(name)
		fs.files[name] = f
	}
	return f, nil
}

// Remove deletes a file.
func (fs *FileSystem) Remove(name string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if _, ok := fs.files[name]; !ok {
		return fmt.Errorf("pfs: file %q does not exist", name)
	}
	delete(fs.files, name)
	return nil
}

// serverFor returns the server index holding byte offset off for the given
// client rank.
func (fs *FileSystem) serverFor(off int64, clientRank int) int {
	switch fs.cfg.Mode {
	case ClientAffinity:
		if len(fs.cfg.Affinity) > 0 {
			return fs.cfg.Affinity[clientRank%len(fs.cfg.Affinity)]
		}
		return clientRank % fs.cfg.Servers
	default:
		return int((off / fs.cfg.StripeSize) % int64(fs.cfg.Servers))
	}
}

// serverModel returns the service cost model of one server — the uniform
// ServerModel unless the server is degraded.
func (fs *FileSystem) serverModel(server int) sim.LinearCost {
	return fs.models[server]
}

// ServerStats is one I/O server's accumulated traffic and queue state: the
// per-server observability layer behind the degraded-server scenarios.
type ServerStats struct {
	// Server is the server index.
	Server int
	// Requests is the number of service requests booked on the server
	// (segments after stripe splitting, not client calls).
	Requests int64
	// Bytes is the data volume moved through the server.
	Bytes int64
	// Busy is the total virtual service time charged on the server's
	// queue; Busy/makespan is the server's occupancy.
	Busy sim.VTime
	// FreeAt is the virtual time at which the server's queue drains.
	FreeAt sim.VTime
}

// ServerStats returns every server's statistics, in server order.
func (fs *FileSystem) ServerStats() []ServerStats {
	out := make([]ServerStats, fs.cfg.Servers)
	for i := range out {
		_, busy := fs.servers.Member(i).Stats()
		out[i] = ServerStats{
			Server:   i,
			Requests: fs.stats[i].requests.Load(),
			Bytes:    fs.stats[i].bytes.Load(),
			Busy:     busy,
			FreeAt:   fs.servers.Member(i).FreeAt(),
		}
	}
	return out
}
