// Package pfs simulates the parallel file systems the paper evaluates on
// (ENFS on ASCI Cplant, SGI XFS, IBM GPFS): a set of I/O servers serving a
// shared striped file, accessed by per-process clients that may cache with
// the read-ahead and write-behind policies the paper discusses in §3.
//
// The simulator moves real bytes (so atomicity violations are observable in
// actual file content) while accounting virtual time on the clients' clocks
// and on per-server FCFS queues (see package sim). Aggregate bandwidth
// reported by the experiment harness is data volume divided by the virtual
// makespan.
package pfs

import (
	"fmt"
	"sync"

	"atomio/internal/sim"
)

// StripeMode selects how file bytes map to I/O servers.
type StripeMode int

const (
	// RoundRobin stripes the file across all servers in StripeSize units,
	// as GPFS and striped scratch file systems do.
	RoundRobin StripeMode = iota
	// ClientAffinity binds each client to the single server its node was
	// assigned at boot, as Cplant's ENFS does ("each compute node is
	// mapped to one of the I/O servers in a round-robin selection scheme
	// at boot time").
	ClientAffinity
)

// String names the mode.
func (m StripeMode) String() string {
	switch m {
	case RoundRobin:
		return "round-robin"
	case ClientAffinity:
		return "client-affinity"
	default:
		return fmt.Sprintf("StripeMode(%d)", int(m))
	}
}

// Config describes a simulated file system instance.
type Config struct {
	// Servers is the number of I/O servers. Must be >= 1.
	Servers int
	// StripeSize is the striping unit in bytes for RoundRobin mode.
	StripeSize int64
	// Mode selects the byte-to-server mapping.
	Mode StripeMode

	// ServerModel is the per-request service cost charged on a server's
	// queue (request handling latency plus bytes at the server's disk or
	// RAID bandwidth).
	ServerModel sim.LinearCost
	// ClientModel is the per-request cost charged serially at the client
	// (network link plus client-side request processing).
	ClientModel sim.LinearCost
	// SegOverhead is the extra client-side cost per additional
	// non-contiguous segment in a vectored request — the per-row cost
	// that dominates the column-wise pattern.
	SegOverhead sim.VTime

	// StoreData controls whether written bytes are materialized. Large
	// benchmark runs disable it to account time without allocating the
	// full file; correctness tests leave it on.
	StoreData bool

	// AtomicListIO grants the file system the hypothetical capability the
	// paper discusses in §3.2: POSIX atomicity extended to
	// lio_listio-style vectored requests. When set, Client.WriteVAtomic
	// executes a whole multi-segment write atomically with respect to
	// every other atomic vectored write on the same file (the file system
	// internally serializes such calls). No 2003 file system provided
	// this; it exists here to evaluate the paper's "if POSIX atomicity is
	// extended to lio_listio(), the MPI atomicity can be guaranteed"
	// observation.
	AtomicListIO bool

	// Cache configures the per-client cache. A zero value disables
	// caching (every request goes to the servers).
	Cache CacheConfig
}

func (c Config) withDefaults() Config {
	if c.Servers == 0 {
		c.Servers = 1
	}
	if c.StripeSize == 0 {
		c.StripeSize = 64 << 10
	}
	return c
}

func (c Config) validate() error {
	if c.Servers < 1 {
		return fmt.Errorf("pfs: Servers must be >= 1, got %d", c.Servers)
	}
	if c.StripeSize < 1 {
		return fmt.Errorf("pfs: StripeSize must be >= 1, got %d", c.StripeSize)
	}
	return nil
}

// FileSystem is one simulated parallel file system instance shared by every
// client of a run.
type FileSystem struct {
	cfg     Config
	servers *sim.Pool
	gate    *sim.Gate

	mu    sync.Mutex
	files map[string]*file
}

// New creates a file system. It panics on an invalid configuration
// (simulator setup is programmer-controlled).
func New(cfg Config) *FileSystem {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		panic(err)
	}
	return &FileSystem{
		cfg:     cfg,
		servers: sim.NewPool("ioserver", cfg.Servers),
		files:   make(map[string]*file),
	}
}

// Config returns the file system's configuration.
func (fs *FileSystem) Config() Config { return fs.cfg }

// SetGate routes server-queue bookings through a determinism gate (see
// sim.Gate); client ranks double as gate actor ids. Call before the run
// starts.
func (fs *FileSystem) SetGate(g *sim.Gate) { fs.gate = g }

// Servers exposes the server pool (for utilization reporting in benches).
func (fs *FileSystem) Servers() *sim.Pool { return fs.servers }

// lookup returns the named file, creating it if requested.
func (fs *FileSystem) lookup(name string, create bool) (*file, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	f, ok := fs.files[name]
	if !ok {
		if !create {
			return nil, fmt.Errorf("pfs: file %q does not exist", name)
		}
		f = newFile(name, fs.cfg.StoreData)
		fs.files[name] = f
	}
	return f, nil
}

// Remove deletes a file.
func (fs *FileSystem) Remove(name string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if _, ok := fs.files[name]; !ok {
		return fmt.Errorf("pfs: file %q does not exist", name)
	}
	delete(fs.files, name)
	return nil
}

// serverFor returns the server index holding byte offset off for the given
// client rank.
func (fs *FileSystem) serverFor(off int64, clientRank int) int {
	switch fs.cfg.Mode {
	case ClientAffinity:
		return clientRank % fs.cfg.Servers
	default:
		return int((off / fs.cfg.StripeSize) % int64(fs.cfg.Servers))
	}
}
