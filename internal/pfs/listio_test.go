package pfs

import (
	"errors"
	"sync"
	"testing"

	"atomio/internal/sim"
)

func atomicFS() *FileSystem {
	cfg := basicFS(2).Config()
	cfg.AtomicListIO = true
	return MustNew(cfg)
}

func TestWriteVAtomicRequiresCapability(t *testing.T) {
	fs := basicFS(1)
	c, _ := fs.Open("f", 0, sim.NewClock(0))
	err := c.WriteVAtomic([]Segment{{Off: 0, Data: []byte("x")}})
	if !errors.Is(err, ErrNoAtomicListIO) {
		t.Fatalf("err = %v", err)
	}
}

func TestWriteVAtomicStoresData(t *testing.T) {
	fs := atomicFS()
	c, _ := fs.Open("f", 0, sim.NewClock(0))
	if err := c.WriteVAtomic([]Segment{
		{Off: 0, Data: []byte("AA")},
		{Off: 10, Data: []byte("BB")},
	}); err != nil {
		t.Fatal(err)
	}
	snap, _ := fs.Snapshot("f", ext(0, 12))
	if string(snap[:2]) != "AA" || string(snap[10:12]) != "BB" {
		t.Fatalf("snapshot = %q", snap)
	}
	if c.BytesWritten() != 4 {
		t.Fatalf("bytes written = %d", c.BytesWritten())
	}
}

func TestWriteVAtomicNeverInterleaves(t *testing.T) {
	// Concurrent atomic vectored writes to the same overlapped region:
	// the result must be entirely one writer's data, for every region,
	// under heavy real concurrency.
	fs := atomicFS()
	const writers = 8
	const segCount = 16
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c, _ := fs.Open("f", w, sim.NewClock(0))
			segs := make([]Segment, segCount)
			for i := range segs {
				data := make([]byte, 8)
				for k := range data {
					data[k] = byte(w + 1)
				}
				segs[i] = Segment{Off: int64(i * 16), Data: data}
			}
			if err := c.WriteVAtomic(segs); err != nil {
				t.Error(err)
			}
		}(w)
	}
	wg.Wait()
	// Every 8-byte segment region must be uniform (single writer).
	for i := 0; i < segCount; i++ {
		snap, _ := fs.Snapshot("f", ext(int64(i*16), 8))
		first := snap[0]
		if first == 0 || first > writers {
			t.Fatalf("region %d has foreign byte %d", i, first)
		}
		for _, b := range snap {
			if b != first {
				t.Fatalf("region %d interleaved: %v", i, snap)
			}
		}
	}
	// Moreover, ALL regions must come from the same writer: the whole
	// vectored call is atomic, not just each segment.
	first, _ := fs.Snapshot("f", ext(0, 1))
	for i := 1; i < segCount; i++ {
		snap, _ := fs.Snapshot("f", ext(int64(i*16), 1))
		if snap[0] != first[0] {
			t.Fatalf("call-level atomicity broken: region 0 by %d, region %d by %d",
				first[0], i, snap[0])
		}
	}
}

func TestWriteVAtomicSerializesVirtualTime(t *testing.T) {
	fs := atomicFS()
	clkA, clkB := sim.NewClock(0), sim.NewClock(0)
	a, _ := fs.Open("f", 0, clkA)
	b, _ := fs.Open("f", 1, clkB)
	if err := a.WriteVAtomic([]Segment{{Off: 0, Data: make([]byte, 1<<20)}}); err != nil {
		t.Fatal(err)
	}
	if err := b.WriteVAtomic([]Segment{{Off: 0, Data: make([]byte, 1<<20)}}); err != nil {
		t.Fatal(err)
	}
	if clkB.Now() < clkA.Now() {
		t.Fatalf("second atomic call (%v) did not queue behind first (%v)", clkB.Now(), clkA.Now())
	}
}

func TestConcurrentDisjointWritersContentAndConservation(t *testing.T) {
	// 16 goroutine clients writing disjoint striped regions: all content
	// lands correctly and the servers' total busy time equals the sum of
	// the individual service demands (virtual work is conserved under
	// real concurrency).
	fs := basicFS(4)
	const writers, size = 16, 4096
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c, _ := fs.Open("f", w, sim.NewClock(0))
			data := make([]byte, size)
			for i := range data {
				data[i] = byte(w)
			}
			c.WriteAt(int64(w*size), data)
		}(w)
	}
	wg.Wait()
	for w := 0; w < writers; w++ {
		snap, _ := fs.Snapshot("f", ext(int64(w*size), size))
		for i, b := range snap {
			if b != byte(w) {
				t.Fatalf("writer %d byte %d = %d", w, i, b)
			}
		}
	}
	var busy sim.VTime
	var ops int64
	for i := 0; i < fs.Servers().Size(); i++ {
		o, bz := fs.Servers().Member(i).Stats()
		ops += o
		busy += bz
	}
	// Each writer's bytes are booked as one Acquire per server (ops =
	// writers*servers), whose service charges the per-stripe-unit request
	// latency for every unit plus the byte transfer: total busy time is
	// exactly the sum of those demands — conservation under concurrency.
	if ops != writers*4 {
		t.Fatalf("server ops = %d, want %d", ops, writers*4)
	}
	stripeUnitsPerServerPerWriter := int64(size) / fs.Config().StripeSize / 4
	bytesPerServerPerWriter := int64(size / 4)
	perWriterServer := sim.VTime(stripeUnitsPerServerPerWriter)*fs.Config().ServerModel.Latency +
		sim.LinearCost{BytesPerSec: fs.Config().ServerModel.BytesPerSec}.Cost(bytesPerServerPerWriter)
	if want := sim.VTime(writers*4) * perWriterServer; busy != want {
		t.Fatalf("total busy = %v, want %v", busy, want)
	}
}
