package pfs

import (
	"sync"

	"atomio/internal/interval"
	"atomio/internal/interval/index"
	"atomio/internal/sim"
)

// storeChunk is the allocation granularity of the sparse file store.
const storeChunk = 1 << 16

// file is the shared server-side state of one file: a sparse chunked byte
// store plus the file size. Chunk-level locking keeps concurrent writers to
// disjoint chunks parallel while making each individual segment write
// atomic at byte granularity only to the degree a real file system would —
// two concurrent writes to the same bytes land in arrival order, so
// concurrent overlapping segment writes genuinely interleave.
//
// written tracks the byte ranges ever stored (an index.Set: canonical,
// binary-searched), so reads partition themselves into written parts served
// from chunks and holes zero-filled directly — sparse reads no longer walk
// the chunk map chunk by chunk.
type file struct {
	name  string
	store bool

	mu      sync.Mutex
	size    int64
	chunks  map[int64][]byte
	written index.Set

	// Atomic-listio serialization: listioMu makes the segment stores of
	// one WriteVAtomic indivisible in real execution, and listioFreeAt is
	// the virtual time at which the file's listio facility next becomes
	// idle (guarded by listioMu).
	listioMu     sync.Mutex
	listioFreeAt sim.VTime
}

func newFile(name string, store bool) *file {
	return &file{name: name, store: store, chunks: make(map[int64][]byte)}
}

// writeAt stores data at off and extends the file size.
func (f *file) writeAt(off int64, data []byte) {
	end := off + int64(len(data))
	f.mu.Lock()
	defer f.mu.Unlock()
	if end > f.size {
		f.size = end
	}
	if !f.store {
		return
	}
	f.written.Add(interval.Extent{Off: off, Len: int64(len(data))})
	for len(data) > 0 {
		ci := off / storeChunk
		co := off % storeChunk
		n := int64(len(data))
		if n > storeChunk-co {
			n = storeChunk - co
		}
		c, ok := f.chunks[ci]
		if !ok {
			c = make([]byte, storeChunk)
			f.chunks[ci] = c
		}
		copy(c[co:co+n], data[:n])
		off += n
		data = data[n:]
	}
}

// readAt fills buf from off; bytes never written read as zero. The written
// set partitions the request: holes are zero-filled without consulting the
// chunk map, and only genuinely written parts walk their chunks.
func (f *file) readAt(off int64, buf []byte) {
	if len(buf) == 0 {
		return
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	req := interval.Extent{Off: off, Len: int64(len(buf))}
	f.written.Visit(req, func(part interval.Extent, covered bool) bool {
		dst := buf[part.Off-off : part.End()-off]
		if !covered {
			clear(dst)
			return true
		}
		pos := part.Off
		out := dst
		for len(out) > 0 {
			ci := pos / storeChunk
			co := pos % storeChunk
			n := int64(len(out))
			if n > storeChunk-co {
				n = storeChunk - co
			}
			// Written bytes always have a chunk; writeAt allocates them.
			copy(out[:n], f.chunks[ci][co:co+n])
			pos += n
			out = out[n:]
		}
		return true
	})
}

// writtenExtents returns the canonical list of byte ranges ever stored.
func (f *file) writtenExtents() interval.List {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.written.Extents()
}

// sizeNow returns the current file size.
func (f *file) sizeNow() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.size
}

// Snapshot copies the bytes of extent e out of the named file; offsets never
// written read as zero. It is the verification hook used by tests and the
// atomicity checker.
func (fs *FileSystem) Snapshot(name string, e interval.Extent) ([]byte, error) {
	f, err := fs.lookup(name, false)
	if err != nil {
		return nil, err
	}
	buf := make([]byte, e.Len)
	f.readAt(e.Off, buf)
	return buf, nil
}

// WrittenExtents returns the canonical list of byte ranges ever written to
// the named file — the store's dirty-extent index. Data-less runs
// (StoreData off) track no extents and return an empty list.
func (fs *FileSystem) WrittenExtents(name string) (interval.List, error) {
	f, err := fs.lookup(name, false)
	if err != nil {
		return nil, err
	}
	return f.writtenExtents(), nil
}

// FileSize returns the current size of the named file.
func (fs *FileSystem) FileSize(name string) (int64, error) {
	f, err := fs.lookup(name, false)
	if err != nil {
		return 0, err
	}
	return f.sizeNow(), nil
}
