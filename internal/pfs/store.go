package pfs

import (
	"sync"

	"atomio/internal/interval"
	"atomio/internal/interval/index"
	"atomio/internal/sim"
)

// storeChunk is the allocation granularity of the sparse file stores.
const storeChunk = 1 << 16

// content is the byte-storage layer of one file. Two implementations exist:
// sharedStore, the original single store every server writes into (kept as
// the property-test oracle), and stripedStore, the per-server subsystem in
// which each simulated I/O server owns its own chunk store and
// written-extent index (see striped.go). Both expose the same observable
// file: on any healthy configuration reads, written extents and snapshots
// are identical, which is what the striped quick-tests pin.
//
// Implementations do their own locking; rank identifies the writing client
// for affinity-mode storage routing.
type content interface {
	// write stores data at off on behalf of the given client rank.
	write(off int64, data []byte, rank int)
	// read fills buf from off; bytes never written read as zero.
	read(off int64, buf []byte)
	// extents returns the canonical list of byte ranges ever stored,
	// merged across servers.
	extents() interval.List
}

// file is one file's server-side state: its size, its content store (nil for
// data-less runs), and the atomic-listio serialization point. Which content
// layout backs it is decided by the file system's configuration.
type file struct {
	name string

	mu   sync.Mutex
	size int64

	content content

	// Atomic-listio serialization: listioMu makes the segment stores of
	// one WriteVAtomic indivisible in real execution, and listioFreeAt is
	// the virtual time at which the file's listio facility next becomes
	// idle (guarded by listioMu).
	listioMu     sync.Mutex
	listioFreeAt sim.VTime

	// Fault bookkeeping (see fault.go): damage is the set of byte ranges
	// surrendered to injected faults, intents the write-ahead log that
	// Recover replays over them. Both stay empty on healthy runs.
	damageMu sync.Mutex
	damage   index.Set

	walMu   sync.Mutex
	intents map[int][]Segment
}

// newFile creates a file backed by the configured store layout.
func (fs *FileSystem) newFile(name string) *file {
	f := &file{name: name}
	if !fs.cfg.StoreData {
		return f
	}
	if fs.cfg.SharedStore {
		f.content = &sharedStore{chunks: make(map[int64][]byte)}
	} else {
		f.content = newStripedStore(fs.cfg)
	}
	return f
}

// writeAt stores data at off on behalf of rank and extends the file size.
func (f *file) writeAt(off int64, data []byte, rank int) {
	end := off + int64(len(data))
	f.mu.Lock()
	if end > f.size {
		f.size = end
	}
	f.mu.Unlock()
	if f.content != nil && len(data) > 0 {
		f.content.write(off, data, rank)
	}
}

// readAt fills buf from off; bytes never written read as zero.
func (f *file) readAt(off int64, buf []byte) {
	if len(buf) == 0 {
		return
	}
	if f.content == nil {
		clear(buf)
		return
	}
	f.content.read(off, buf)
}

// writtenExtents returns the canonical list of byte ranges ever stored.
// Data-less files track no extents.
func (f *file) writtenExtents() interval.List {
	if f.content == nil {
		return nil
	}
	return f.content.extents()
}

// sizeNow returns the current file size.
func (f *file) sizeNow() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.size
}

// sharedStore is the pre-striping content layout: one chunked byte store
// and one written-extent set shared by every server. Store-level locking
// keeps each individual segment write atomic at byte granularity only to
// the degree a real file system would — two concurrent writes to the same
// bytes land in arrival order, so concurrent overlapping segment writes
// genuinely interleave.
//
// written tracks the byte ranges ever stored (an index.Set: canonical,
// binary-searched), so reads partition themselves into written parts served
// from chunks and holes zero-filled directly — sparse reads do not walk the
// chunk map chunk by chunk.
type sharedStore struct {
	mu      sync.Mutex
	chunks  map[int64][]byte
	written index.Set
}

func (s *sharedStore) write(off int64, data []byte, _ int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.written.Add(interval.Extent{Off: off, Len: int64(len(data))})
	chunkWrite(s.chunks, off, data)
}

func (s *sharedStore) read(off int64, buf []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	coveredRead(&s.written, s.chunks, off, buf)
}

func (s *sharedStore) extents() interval.List {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.written.Extents()
}

// chunkWrite copies data into a sparse chunk map at off, allocating chunks
// on demand. Callers hold the store's lock.
func chunkWrite(chunks map[int64][]byte, off int64, data []byte) {
	for len(data) > 0 {
		ci := off / storeChunk
		co := off % storeChunk
		n := int64(len(data))
		if n > storeChunk-co {
			n = storeChunk - co
		}
		c, ok := chunks[ci]
		if !ok {
			c = make([]byte, storeChunk)
			chunks[ci] = c
		}
		copy(c[co:co+n], data[:n])
		off += n
		data = data[n:]
	}
}

// chunkRead fills buf from the chunk map at off. Every byte of the request
// must have been written (its chunk allocated); callers hold the store's
// lock.
func chunkRead(chunks map[int64][]byte, off int64, buf []byte) {
	for len(buf) > 0 {
		ci := off / storeChunk
		co := off % storeChunk
		n := int64(len(buf))
		if n > storeChunk-co {
			n = storeChunk - co
		}
		copy(buf[:n], chunks[ci][co:co+n])
		off += n
		buf = buf[n:]
	}
}

// coveredRead serves a read from a (written set, chunk map) pair: written
// parts come from chunks, holes are zero-filled without consulting the
// chunk map. Callers hold the store's lock.
func coveredRead(written *index.Set, chunks map[int64][]byte, off int64, buf []byte) {
	req := interval.Extent{Off: off, Len: int64(len(buf))}
	written.Visit(req, func(part interval.Extent, covered bool) bool {
		dst := buf[part.Off-off : part.End()-off]
		if covered {
			chunkRead(chunks, part.Off, dst)
		} else {
			clear(dst)
		}
		return true
	})
}

// Snapshot copies the bytes of extent e out of the named file; offsets never
// written read as zero. It is the verification hook used by tests and the
// atomicity checker.
func (fs *FileSystem) Snapshot(name string, e interval.Extent) ([]byte, error) {
	f, err := fs.lookup(name, false)
	if err != nil {
		return nil, err
	}
	buf := make([]byte, e.Len)
	f.readAt(e.Off, buf)
	return buf, nil
}

// WrittenExtents returns the canonical list of byte ranges ever written to
// the named file — the union of the per-server dirty-extent indexes (or the
// shared store's single index). Data-less runs (StoreData off) track no
// extents and return an empty list.
func (fs *FileSystem) WrittenExtents(name string) (interval.List, error) {
	f, err := fs.lookup(name, false)
	if err != nil {
		return nil, err
	}
	return f.writtenExtents(), nil
}

// FileSize returns the current size of the named file.
func (fs *FileSystem) FileSize(name string) (int64, error) {
	f, err := fs.lookup(name, false)
	if err != nil {
		return 0, err
	}
	return f.sizeNow(), nil
}
