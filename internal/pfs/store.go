package pfs

import (
	"sync"

	"atomio/internal/interval"
	"atomio/internal/sim"
)

// storeChunk is the allocation granularity of the sparse file store.
const storeChunk = 1 << 16

// file is the shared server-side state of one file: a sparse chunked byte
// store plus the file size. Chunk-level locking keeps concurrent writers to
// disjoint chunks parallel while making each individual segment write
// atomic at byte granularity only to the degree a real file system would —
// two concurrent writes to the same bytes land in arrival order, so
// concurrent overlapping segment writes genuinely interleave.
type file struct {
	name  string
	store bool

	mu     sync.Mutex
	size   int64
	chunks map[int64][]byte

	// Atomic-listio serialization: listioMu makes the segment stores of
	// one WriteVAtomic indivisible in real execution, and listioFreeAt is
	// the virtual time at which the file's listio facility next becomes
	// idle (guarded by listioMu).
	listioMu     sync.Mutex
	listioFreeAt sim.VTime
}

func newFile(name string, store bool) *file {
	return &file{name: name, store: store, chunks: make(map[int64][]byte)}
}

// writeAt stores data at off and extends the file size.
func (f *file) writeAt(off int64, data []byte) {
	end := off + int64(len(data))
	f.mu.Lock()
	defer f.mu.Unlock()
	if end > f.size {
		f.size = end
	}
	if !f.store {
		return
	}
	for len(data) > 0 {
		ci := off / storeChunk
		co := off % storeChunk
		n := int64(len(data))
		if n > storeChunk-co {
			n = storeChunk - co
		}
		c, ok := f.chunks[ci]
		if !ok {
			c = make([]byte, storeChunk)
			f.chunks[ci] = c
		}
		copy(c[co:co+n], data[:n])
		off += n
		data = data[n:]
	}
}

// readAt fills buf from off; bytes never written read as zero.
func (f *file) readAt(off int64, buf []byte) {
	f.mu.Lock()
	defer f.mu.Unlock()
	pos := off
	out := buf
	for len(out) > 0 {
		ci := pos / storeChunk
		co := pos % storeChunk
		n := int64(len(out))
		if n > storeChunk-co {
			n = storeChunk - co
		}
		if c, ok := f.chunks[ci]; ok {
			copy(out[:n], c[co:co+n])
		} else {
			for i := int64(0); i < n; i++ {
				out[i] = 0
			}
		}
		pos += n
		out = out[n:]
	}
}

// sizeNow returns the current file size.
func (f *file) sizeNow() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.size
}

// Snapshot copies the bytes of extent e out of the named file; offsets never
// written read as zero. It is the verification hook used by tests and the
// atomicity checker.
func (fs *FileSystem) Snapshot(name string, e interval.Extent) ([]byte, error) {
	f, err := fs.lookup(name, false)
	if err != nil {
		return nil, err
	}
	buf := make([]byte, e.Len)
	f.readAt(e.Off, buf)
	return buf, nil
}

// FileSize returns the current size of the named file.
func (fs *FileSystem) FileSize(name string) (int64, error) {
	f, err := fs.lookup(name, false)
	if err != nil {
		return 0, err
	}
	return f.sizeNow(), nil
}
