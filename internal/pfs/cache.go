package pfs

import (
	"atomio/internal/interval"
	"atomio/internal/sim"
)

// CacheConfig configures a client's cache with the two policies the paper
// singles out as working against overlapping parallel I/O: read-ahead and
// write-behind (§3: "The read-ahead and write-behind policies often work
// against the goals of any file system relying on random-access
// operations").
type CacheConfig struct {
	// Enabled turns the client cache on.
	Enabled bool
	// BlockSize is the caching granularity in bytes.
	BlockSize int64
	// ReadAheadBlocks is how many extra blocks a read miss prefetches.
	ReadAheadBlocks int
	// WriteBehind makes writes land in the cache and reach the servers
	// only at Sync (or Close).
	WriteBehind bool
	// MemModel is the cost of moving bytes between the application and
	// the cache (a memory copy).
	MemModel sim.LinearCost
}

func (c CacheConfig) blockSize() int64 {
	if c.BlockSize <= 0 {
		return 64 << 10
	}
	return c.BlockSize
}

// cache is one client's private cache. It is not shared: cross-client
// staleness is the point being modelled.
type cache struct {
	cfg    CacheConfig
	retain bool // keep written bytes (mirrors Config.StoreData)

	valid map[int64]bool // readable blocks

	// Write-behind state: which bytes are dirty, and (when retaining)
	// their content in block-granular pieces, applied in write order so
	// a client's own later writes win on overlap.
	dirtyExts  interval.List
	dirtyData  map[int64][]byte
	dirtyBytes int64
}

func newCache(cfg CacheConfig, retain bool) *cache {
	return &cache{
		cfg:       cfg,
		retain:    retain,
		valid:     make(map[int64]bool),
		dirtyData: make(map[int64][]byte),
	}
}

// absorb records a write-behind write in write order.
func (c *cache) absorb(segs []Segment) {
	bs := c.cfg.blockSize()
	for _, s := range segs {
		n := int64(len(s.Data))
		if n == 0 {
			continue
		}
		c.dirtyBytes += n
		c.dirtyExts = append(c.dirtyExts, interval.Extent{Off: s.Off, Len: n})
		if c.retain {
			off, data := s.Off, s.Data
			for len(data) > 0 {
				b := off / bs
				bo := off % bs
				take := bs - bo
				if take > int64(len(data)) {
					take = int64(len(data))
				}
				blk, ok := c.dirtyData[b]
				if !ok {
					blk = make([]byte, bs)
					c.dirtyData[b] = blk
				}
				copy(blk[bo:bo+take], data[:take])
				off += take
				data = data[take:]
			}
		}
		// Written blocks are also readable until invalidated.
		for b := s.Off / bs; b <= (s.Off+n-1)/bs; b++ {
			c.valid[b] = true
		}
	}
}

// takeDirty removes and returns the write-behind data as coalesced segments
// in file order — the batching a write-behind cache exists to provide.
func (c *cache) takeDirty() []Segment {
	if c.dirtyBytes == 0 {
		return nil
	}
	bs := c.cfg.blockSize()
	exts := c.dirtyExts.Normalize()
	segs := make([]Segment, len(exts))
	for i, e := range exts {
		buf := make([]byte, e.Len)
		if c.retain {
			off := e.Off
			out := buf
			for len(out) > 0 {
				b := off / bs
				bo := off % bs
				take := bs - bo
				if take > int64(len(out)) {
					take = int64(len(out))
				}
				if blk, ok := c.dirtyData[b]; ok {
					copy(out[:take], blk[bo:bo+take])
				}
				off += take
				out = out[take:]
			}
		}
		segs[i] = Segment{Off: e.Off, Data: buf}
	}
	c.dirtyExts, c.dirtyBytes = nil, 0
	c.dirtyData = make(map[int64][]byte)
	return segs
}

// read serves a read through the cache, fetching missing blocks (plus
// read-ahead) from the servers.
func (c *cache) read(cl *Client, off int64, buf []byte) {
	if len(buf) == 0 {
		return
	}
	bs := c.cfg.blockSize()
	first := off / bs
	last := (off + int64(len(buf)) - 1) / bs

	// Find missing block runs and fetch them with read-ahead.
	for b := first; b <= last; b++ {
		if c.valid[b] {
			continue
		}
		runEnd := b
		for runEnd+1 <= last && !c.valid[runEnd+1] {
			runEnd++
		}
		fetch := runEnd - b + 1 + int64(c.cfg.ReadAheadBlocks)
		cl.queueServerService([]Segment{{Off: b * bs, Data: make([]byte, fetch*bs)}})
		cl.clock.Advance(cl.fs.cfg.ClientModel.Cost(fetch * bs))
		for v := b; v < b+fetch; v++ {
			c.valid[v] = true
		}
		b = runEnd
	}
	// All blocks resident: serve at memory cost from the authoritative
	// store (the simulation keeps one copy of file bytes; per-client
	// *contents* staleness is governed by the lock/sync protocol of the
	// layers above, while the timing effects of caching are charged here).
	cl.clock.Advance(c.cfg.MemModel.Cost(int64(len(buf))))
	cl.f.readAt(off, buf)
}

// invalidate drops clean cached blocks; dirty write-behind data survives.
func (c *cache) invalidate() {
	c.valid = make(map[int64]bool)
}
