package cli

import (
	"errors"
	"flag"
	"io"
	"reflect"
	"strings"
	"testing"
)

// TestParseProcs mirrors the contract the binaries rely on: trimmed,
// positive, comma-separated counts; everything else is an error.
func TestParseProcs(t *testing.T) {
	got, err := ParseProcs(" 4, 8,16 ")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, []int{4, 8, 16}) {
		t.Errorf("got %v", got)
	}
	for _, bad := range []string{"", "  ", "4,,8", "4,x", "0", "-2", "4,8,"} {
		if _, err := ParseProcs(bad); err == nil {
			t.Errorf("ParseProcs(%q): want error", bad)
		}
	}
}

// TestParsePattern checks the short and long forms normalize, and that
// unknown or empty patterns are rejected.
func TestParsePattern(t *testing.T) {
	cases := map[string]string{
		"column": "column-wise", "column-wise": "column-wise",
		"row": "row-wise", "row-wise": "row-wise",
		"block": "block-block", "block-block": "block-block",
	}
	for in, want := range cases {
		got, err := ParsePattern(in)
		if err != nil || got != want {
			t.Errorf("ParsePattern(%q) = %q, %v; want %q", in, got, err, want)
		}
	}
	for _, bad := range []string{"", "  ", "diagonal", "columns"} {
		if _, err := ParsePattern(bad); err == nil {
			t.Errorf("ParsePattern(%q): want error", bad)
		}
	}
}

// TestParseStrategies checks name resolution through the facade registry;
// unknown names must be reported with the registered names.
func TestParseStrategies(t *testing.T) {
	got, err := ParseStrategies("locking, coloring ,ordering")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, []string{"locking", "coloring", "ordering"}) {
		t.Errorf("got %v", got)
	}
	for _, bad := range []string{"", "locking,,ordering", "osmosis"} {
		if _, err := ParseStrategies(bad); err == nil {
			t.Errorf("ParseStrategies(%q): want error", bad)
		}
	}
	_, err = ParseStrategies("osmosis")
	if err == nil || !strings.Contains(err.Error(), "registered:") {
		t.Errorf("unknown strategy error %v should list registered names", err)
	}
}

// TestModelValidation checks the shared -lockshards/-servers validation.
func TestModelValidation(t *testing.T) {
	cases := []struct {
		args []string
		ok   bool
	}{
		{[]string{}, true},
		{[]string{"-lockshards", "4", "-servers", "7", "-sharedstore"}, true},
		{[]string{"-lockshards", "-1"}, false},
		{[]string{"-servers", "-2"}, false},
		{[]string{"-servers", "x"}, false},
	}
	for _, tc := range cases {
		app := New("test")
		app.SetOutput(io.Discard)
		m := app.Model()
		err := app.Parse(tc.args)
		if (err == nil) != tc.ok {
			t.Errorf("Parse(%v) err = %v, want ok=%v", tc.args, err, tc.ok)
		}
		if tc.ok && len(tc.args) > 0 {
			if m.LockShards != 4 || m.Servers != 7 || !m.SharedStore {
				t.Errorf("Parse(%v) model = %+v", tc.args, m)
			}
		}
	}
}

// TestShapeValidation checks the shared -m/-n/-r validation and defaults.
func TestShapeValidation(t *testing.T) {
	app := New("test")
	app.SetOutput(io.Discard)
	s := app.Shape(256, 2048, 16)
	if err := app.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if s.M != 256 || s.N != 2048 || s.Overlap != 16 {
		t.Errorf("defaults = %+v", s)
	}
	for _, bad := range [][]string{
		{"-m", "0"}, {"-n", "-5"}, {"-r", "-1"}, {"-m", "x"},
	} {
		app := New("test")
		app.SetOutput(io.Discard)
		app.Shape(256, 2048, 16)
		if err := app.Parse(bad); err == nil {
			t.Errorf("Parse(%v): want error", bad)
		}
	}
}

// TestExitCode pins the exit-status convention: 0 for help, 1 for
// validation failures, 2 for flag-syntax errors.
func TestExitCode(t *testing.T) {
	app := New("test")
	app.SetOutput(io.Discard)
	app.Model()
	if err := app.Parse([]string{"-h"}); ExitCode(err) != 0 {
		t.Errorf("help: ExitCode = %d, want 0", ExitCode(err))
	}
	app = New("test")
	app.SetOutput(io.Discard)
	app.Model()
	if err := app.Parse([]string{"-lockshards", "-1"}); ExitCode(err) != 1 {
		t.Errorf("validation: ExitCode = %d, want 1", ExitCode(err))
	}
	app = New("test")
	app.SetOutput(io.Discard)
	if err := app.Parse([]string{"-nosuch"}); ExitCode(err) != 2 {
		t.Errorf("syntax: ExitCode = %d, want 2", ExitCode(err))
	}
	if ExitCode(nil) != 0 {
		t.Errorf("nil: ExitCode = %d, want 0", ExitCode(nil))
	}
}

// TestValidationErrorPrinted checks Parse reports validation failures
// under the binary's name, and that checks run in registration order.
func TestValidationErrorPrinted(t *testing.T) {
	var buf strings.Builder
	app := New("mybinary")
	app.SetOutput(&buf)
	app.Model()
	first := errors.New("first check failed")
	app.Check(func() error { return first })
	err := app.Parse([]string{"-lockshards", "-3"})
	if err == nil {
		t.Fatal("want error")
	}
	if !strings.Contains(err.Error(), "-lockshards") {
		t.Errorf("model check should fail before the later check, got %v", err)
	}
	if got := buf.String(); !strings.HasPrefix(got, "mybinary: ") {
		t.Errorf("diagnostic %q not prefixed with binary name", got)
	}
}

// TestOutputGroup checks the emission flags bind and -progress is only
// registered on request.
func TestOutputGroup(t *testing.T) {
	app := New("test")
	app.SetOutput(io.Discard)
	o := app.Output(true)
	if err := app.Parse([]string{"-workers", "3", "-json", "a.json", "-csv", "b.csv", "-progress"}); err != nil {
		t.Fatal(err)
	}
	if o.Workers != 3 || o.JSON != "a.json" || o.CSV != "b.csv" || !o.Progress {
		t.Errorf("output = %+v", o)
	}
	opts := o.RunOptions("test")
	if opts.Workers != 3 || opts.Progress == nil {
		t.Errorf("RunOptions = %+v", opts)
	}
	app = New("test")
	app.SetOutput(io.Discard)
	o = app.Output(false)
	if err := app.Parse([]string{"-progress"}); err == nil {
		t.Error("-progress without opt-in: want flag error")
	}
	if o.RunOptions("test").Progress != nil {
		t.Error("progress callback without -progress")
	}
}

// TestHelpIsErrHelp pins the -h path so main functions can exit 0.
func TestHelpIsErrHelp(t *testing.T) {
	app := New("test")
	app.SetOutput(io.Discard)
	if err := app.Parse([]string{"-help"}); !errors.Is(err, flag.ErrHelp) {
		t.Errorf("-help err = %v, want flag.ErrHelp", err)
	}
}
