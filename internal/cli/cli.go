// Package cli is the shared command-line layer of the atomio binaries:
// every flag the commands have in common — result emission (-workers,
// -json, -csv, -progress), simulator model parameters (-lockshards,
// -servers, -sharedstore), workload geometry (-m, -n, -r) and -platform —
// is declared once here, validated once, and bound to the public facade's
// types, so figure8, sweep, table1 and atomcheck cannot drift apart on
// names, defaults or error text. The list-valued parsers (ParseProcs,
// ParseStrategies, ParsePattern) resolve names through the facade's
// registries, so unknown names are reported with the registered names.
package cli

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"atomio"
)

// App wraps a flag.FlagSet named after the binary with the shared
// parse/validate/exit conventions. Construct one with New, register flag
// groups and checks, then Parse.
type App struct {
	// Name prefixes every diagnostic ("figure8: ...").
	Name string
	// Flags is the underlying flag set (ContinueOnError), for flags a
	// single binary owns.
	Flags  *flag.FlagSet
	checks []func() error
}

// New creates an App for the named binary. Diagnostics go to stderr until
// SetOutput redirects them (tests pass io.Discard or a buffer).
func New(name string) *App {
	a := &App{Name: name, Flags: flag.NewFlagSet(name, flag.ContinueOnError)}
	a.Flags.SetOutput(os.Stderr)
	return a
}

// SetOutput routes flag-package diagnostics and validation errors to w.
func (a *App) SetOutput(w io.Writer) { a.Flags.SetOutput(w) }

// Check registers a validation that Parse runs after flag parsing, in
// registration order.
func (a *App) Check(f func() error) { a.checks = append(a.checks, f) }

// Parse parses args and runs the registered validations. Flag-syntax
// errors are reported by the flag package itself; validation failures are
// printed as "<name>: <err>" to the flag set's output. Pass the result to
// ExitCode for the conventional exit status.
func (a *App) Parse(args []string) error {
	if err := a.Flags.Parse(args); err != nil {
		return err
	}
	for _, check := range a.checks {
		if err := check(); err != nil {
			fmt.Fprintf(a.Flags.Output(), "%s: %v\n", a.Name, err)
			return &validationError{err}
		}
	}
	return nil
}

// Fatal prints "<name>: <err>" to stderr and exits 1 — the shared
// diagnostic convention for failures after flag parsing.
func Fatal(name string, err error) {
	fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
	os.Exit(1)
}

// validationError marks a post-parse validation failure so ExitCode can
// keep the binaries' historical exit statuses.
type validationError struct{ error }

func (e *validationError) Unwrap() error { return e.error }

// ExitCode maps a Parse error to the conventional exit status: 0 for
// -h/-help, 1 for validation failures, 2 for flag-syntax errors (the flag
// package's own convention).
func ExitCode(err error) int {
	var v *validationError
	switch {
	case err == nil, errors.Is(err, flag.ErrHelp):
		return 0
	case errors.As(err, &v):
		return 1
	default:
		return 2
	}
}

// Output is the result-emission flag group every grid binary shares:
// -workers, -json, -csv and (opt-in) -progress.
type Output struct {
	Workers  int
	JSON     string
	CSV      string
	Progress bool
}

// Output registers the result-emission group on the app.
func (a *App) Output(withProgress bool) *Output {
	o := &Output{}
	a.Flags.IntVar(&o.Workers, "workers", 0, "concurrent cells (0 = all CPUs)")
	a.Flags.StringVar(&o.JSON, "json", "", "also write results as JSON to this file")
	a.Flags.StringVar(&o.CSV, "csv", "", "also write results as CSV to this file")
	if withProgress {
		a.Flags.BoolVar(&o.Progress, "progress", false, "report cell completions on stderr")
	}
	return o
}

// RunOptions binds the group to the facade's grid-run options, reporting
// progress on stderr under the binary's name when -progress is set.
func (o *Output) RunOptions(name string) atomio.RunOptions {
	opts := atomio.RunOptions{Workers: o.Workers}
	if o.Progress {
		opts.Progress = func(done, total int, r atomio.CellResult) {
			fmt.Fprintf(os.Stderr, "%s: [%d/%d] %s (%v)\n",
				name, done, total, r.Cell.ID, r.Wall.Round(1e6))
		}
	}
	return opts
}

// Model is the simulator model-parameter group figure8 and sweep share:
// -lockshards, -servers, -sharedstore.
type Model struct {
	LockShards  int
	Servers     int
	SharedStore bool
	Engine      string
}

// Model registers the model-parameter group on the app, with validation.
func (a *App) Model() *Model {
	m := &Model{}
	a.Flags.IntVar(&m.LockShards, "lockshards", 0,
		"lock-table shards per manager (0 = platform default; output is identical for any value)")
	a.Flags.IntVar(&m.Servers, "servers", 0,
		"simulated I/O servers (0 = platform default; a real model parameter)")
	a.Flags.BoolVar(&m.SharedStore, "sharedstore", false,
		"store bytes in the pre-striping shared store (oracle layout; output is identical either way)")
	a.Flags.StringVar(&m.Engine, "engine", "eventloop",
		"simulation engine: "+strings.Join(atomio.Engines(), " or ")+" (output is identical either way)")
	a.Check(m.validate)
	return m
}

func (m *Model) validate() error {
	if m.LockShards < 0 {
		return fmt.Errorf("-lockshards must be non-negative, got %d", m.LockShards)
	}
	if m.Servers < 0 {
		return fmt.Errorf("-servers must be non-negative, got %d", m.Servers)
	}
	if m.Engine != "" {
		if _, err := atomio.EngineByName(m.Engine); err != nil {
			return fmt.Errorf("-engine: %v", err)
		}
	}
	return nil
}

// Apply copies the group onto a facade grid.
func (m *Model) Apply(g *atomio.Grid) {
	g.LockShards = m.LockShards
	g.Servers = m.Servers
	g.SharedStore = m.SharedStore
	g.Engine = m.Engine
}

// ApplyCells copies the group onto already-expanded cells (the grids that
// enumerate cells directly, like the scaling grid). The engine name was
// validated at flag time, so resolution cannot fail here.
func (m *Model) ApplyCells(cells []atomio.Cell) {
	for i := range cells {
		cells[i].Experiment.LockShards = m.LockShards
		cells[i].Experiment.Servers = m.Servers
		cells[i].Experiment.SharedStore = m.SharedStore
	}
	if err := atomio.ApplyEngine(cells, m.Engine); err != nil {
		panic(err)
	}
}

// Trace is the event-tracing flag group the grid binaries share:
// -trace-out, -trace-limit and -metrics.
type Trace struct {
	Out     string
	Limit   int
	Metrics bool
}

// Trace registers the event-tracing group on the app.
func (a *App) Trace() *Trace {
	t := &Trace{}
	a.Flags.StringVar(&t.Out, "trace-out", "",
		"write per-cell event traces to this file (.json = Chrome trace-event format for Perfetto, "+
			"anything else = atomio.trace/v1 JSONL; multi-cell runs insert the cell ID before the extension)")
	a.Flags.IntVar(&t.Limit, "trace-limit", 0,
		"per-actor event cap for -trace-out (> 0 keeps the newest events, 0 = unbounded)")
	a.Flags.BoolVar(&t.Metrics, "metrics", false,
		"record the metrics registry (messages, queue depths, lock waits) into emitted records "+
			"without keeping event streams")
	a.Check(t.validate)
	return t
}

func (t *Trace) validate() error {
	if t.Limit < 0 {
		return fmt.Errorf("-trace-limit must be non-negative, got %d", t.Limit)
	}
	return nil
}

// Enabled reports whether any tracing was requested.
func (t *Trace) Enabled() bool { return t.Out != "" || t.Metrics }

// limit resolves the recorder's per-actor bound: -metrics without
// -trace-out records metrics only (no event memory at all).
func (t *Trace) limit() int {
	if t.Out == "" {
		return -1
	}
	return t.Limit
}

// Apply copies the group onto a facade grid.
func (t *Trace) Apply(g *atomio.Grid) {
	if !t.Enabled() {
		return
	}
	g.TraceEvents = true
	g.TraceLimit = t.limit()
}

// ApplyCells copies the group onto already-expanded cells.
func (t *Trace) ApplyCells(cells []atomio.Cell) {
	if !t.Enabled() {
		return
	}
	for i := range cells {
		cells[i].Experiment.TraceEvents = true
		cells[i].Experiment.EventLimit = t.limit()
	}
}

// Write emits the traces of completed cells. A run with one traced cell
// writes exactly -trace-out; with several, each cell's file inserts its
// sanitized ID before the extension. A ".json" path selects the Chrome
// trace-event format; anything else gets atomio.trace/v1 JSONL.
func (t *Trace) Write(results []atomio.CellResult) error {
	if t.Out == "" {
		return nil
	}
	var traced []atomio.CellResult
	for _, r := range results {
		if r.Err == nil && r.Result != nil && r.Result.Events != nil {
			traced = append(traced, r)
		}
	}
	for _, r := range traced {
		path := t.Out
		if len(traced) > 1 {
			ext := filepath.Ext(path)
			path = strings.TrimSuffix(path, ext) + "-" + sanitizeID(r.Cell.ID) + ext
		}
		if err := writeTrace(path, r.Result.Events); err != nil {
			return err
		}
	}
	return nil
}

// writeTrace writes one recorder to path in the format its extension picks.
func writeTrace(path string, rec *atomio.TraceRecorder) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	emit := atomio.WriteTraceJSONL
	if strings.HasSuffix(path, ".json") {
		emit = atomio.WriteChromeTrace
	}
	if err := emit(f, rec); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// sanitizeID maps a cell ID ("IBM SP/32 MB/P4/locking") to a file-name-safe
// token.
func sanitizeID(id string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '.', r == '-', r == '_':
			return r
		default:
			return '-'
		}
	}, id)
}

// Shape is the workload-geometry group: -m, -n, -r with per-binary
// defaults.
type Shape struct {
	M, N    int
	Overlap int
}

// Shape registers the geometry group on the app, with validation.
func (a *App) Shape(m, n, r int) *Shape {
	s := &Shape{}
	a.Flags.IntVar(&s.M, "m", m, "array rows")
	a.Flags.IntVar(&s.N, "n", n, "array columns")
	a.Flags.IntVar(&s.Overlap, "r", r, "overlapped rows/columns (even)")
	a.Check(s.validate)
	return s
}

func (s *Shape) validate() error {
	if s.M < 1 || s.N < 1 {
		return fmt.Errorf("array shape %dx%d must be positive", s.M, s.N)
	}
	if s.Overlap < 0 {
		return fmt.Errorf("-r must be non-negative, got %d", s.Overlap)
	}
	return nil
}

// Platform registers the -platform flag with a per-binary default and
// usage string.
func (a *App) Platform(def, usage string) *string {
	return a.Flags.String("platform", def, usage)
}

// ParseProcs parses a comma-separated list of process counts, rejecting
// empty, non-numeric and non-positive entries.
func ParseProcs(s string) ([]int, error) {
	if strings.TrimSpace(s) == "" {
		return nil, fmt.Errorf("empty process list")
	}
	var procs []int
	for _, f := range strings.Split(s, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			return nil, fmt.Errorf("empty entry in process list %q", s)
		}
		v, err := strconv.Atoi(f)
		if err != nil {
			return nil, fmt.Errorf("bad process count %q", f)
		}
		if v < 1 {
			return nil, fmt.Errorf("process count must be positive, got %d", v)
		}
		procs = append(procs, v)
	}
	return procs, nil
}

// ParsePattern parses a partitioning-pattern name into its canonical form,
// accepting the short flag forms (column, row, block) and the full names.
// Unlike atomio.NormalizePattern it rejects the empty string: a flag value
// must name a pattern explicitly.
func ParsePattern(s string) (string, error) {
	if strings.TrimSpace(s) == "" {
		return "", fmt.Errorf("empty pattern (want column, row or block)")
	}
	return atomio.NormalizePattern(s)
}

// ParseStrategies parses a comma-separated strategy list into canonical
// registered names, rejecting empty entries; unknown names are reported
// with the registered names.
func ParseStrategies(s string) ([]string, error) {
	if strings.TrimSpace(s) == "" {
		return nil, fmt.Errorf("empty strategy list")
	}
	var out []string
	for _, f := range strings.Split(s, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			return nil, fmt.Errorf("empty entry in strategy list %q", s)
		}
		strat, err := atomio.StrategyByName(f)
		if err != nil {
			return nil, err
		}
		out = append(out, strat.Name())
	}
	return out, nil
}
