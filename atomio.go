// Package atomio is the public face of the repository: a reproduction of
// "Scalable Implementations of MPI Atomicity for Concurrent Overlapping
// I/O" (Liao et al., ICPP 2003) grown into a simulated parallel-I/O
// laboratory.
//
// The package wraps the internal layers — platform profiles, the
// virtual-time MPI and parallel-file-system simulators, the byte-range lock
// service, the atomicity strategies and the grid runner — behind one
// options-based API. Everything is named: platforms, atomicity strategies,
// partitioning patterns and degraded-server scenarios are resolved through
// registries, so a consumer composes an experiment from strings instead of
// hand-wiring internal structs:
//
//	res, err := atomio.Run(
//		atomio.Platform("Cplant"),
//		atomio.Procs(8),
//		atomio.Strategy("ordering"),
//		atomio.Scenario("slow0x4"),
//	)
//
// New validates an option list into a Spec; Spec.Run executes it. RunGrid
// executes many cells on a worker pool; Figure8, Scaling, ShardSweep and
// Degraded return the paper's evaluation grids; Fleet returns the seeded
// failure-injection fleet. New subsystems plug in by registering a name
// (RegisterStrategy, RegisterPlatform, RegisterScenario, RegisterFault)
// rather than growing another struct field.
package atomio

import (
	"fmt"
	"io"
	"strings"
	"time"

	"atomio/internal/core"
	"atomio/internal/harness"
	"atomio/internal/obs"
	"atomio/internal/pfs"
	"atomio/internal/platform"
	"atomio/internal/sim"
	"atomio/internal/sim/fault"
	"atomio/internal/verify"
)

// Re-exported result and record types: the facade returns the same values
// the internal layers produce, so nothing is copied or lossy.
type (
	// Result is the outcome of one experiment (virtual makespan,
	// bandwidth, written volume, atomicity report, per-server stats).
	Result = harness.Result
	// Report is the MPI-atomicity check over the resulting file content.
	Report = verify.Report
	// Profile is one simulated platform: the paper's Table 1 facts plus
	// simulator parameters.
	Profile = platform.Profile
	// VTime is simulated virtual time in nanoseconds.
	VTime = sim.VTime
	// ServerStats is one simulated I/O server's traffic and queue state.
	ServerStats = pfs.ServerStats
	// ServerStatsSummary condenses per-server stats into hot-server
	// indicators.
	ServerStatsSummary = harness.ServerStatsSummary
	// SimEngine executes a simulation's rank bodies and orders their
	// cross-rank interactions; every registered engine produces
	// byte-identical virtual results (see sim.Engine).
	SimEngine = sim.Engine
	// FaultScript is a named, deterministic failure-injection script:
	// seeded events over virtual time (server crash windows, lock-message
	// faults, writer crashes) plus the lock-lease duration.
	FaultScript = fault.Script
	// Verdict classifies a verified run's atomicity outcome: serializable,
	// torn, or recovered-serializable.
	Verdict = verify.Verdict
	// TraceEvent is one structured virtual-time event of a traced run,
	// totally ordered by (T, Actor, Seq) and byte-identical across engines,
	// worker counts and lock-shard counts (see internal/obs).
	TraceEvent = obs.Event
	// TraceRecorder collects a traced run's event streams and metrics;
	// Result.Events holds one when tracing was requested.
	TraceRecorder = obs.Recorder
	// TraceMetrics is the merged metrics snapshot of a traced run
	// (counters, gauges and virtual-time histograms).
	TraceMetrics = obs.Metrics
)

// The verdict values (see verify.Verdict for their exact meaning).
const (
	Serializable          = verify.Serializable
	Torn                  = verify.Torn
	RecoveredSerializable = verify.RecoveredSerializable
)

// Spec is a fully described experiment: every dimension is a plain value or
// a registry name, resolved and validated by New. The zero value is not
// usable; construct specs through New so defaults and validation apply.
type Spec struct {
	// Platform is the registered platform profile name.
	Platform string
	// M and N are the global array dimensions in bytes.
	M, N int
	// Procs is the number of simulated MPI processes.
	Procs int
	// Overlap is the number of overlapped rows/columns R.
	Overlap int
	// Pattern is the partitioning pattern: "column-wise", "row-wise" or
	// "block-block" (NormalizePattern accepts the short forms).
	Pattern string
	// Strategy is the registered atomicity-strategy name.
	Strategy string
	// Scenario is the registered degraded-server scenario name; empty
	// means healthy.
	Scenario string
	// Fault is the registered failure-injection script name; empty means
	// no injected faults.
	Fault string
	// Recovery enables write-ahead intent logging and post-run replay of
	// fault-damaged extents.
	Recovery bool
	// Engine is the registered simulation-engine name; empty selects the
	// event-loop default. Engines are host-performance choices only:
	// virtual results are byte-identical across them.
	Engine string
	// Servers overrides the platform's simulated I/O-server count
	// (0 keeps the platform default; a real model parameter).
	Servers int
	// LockShards overrides the lock manager's table shard count
	// (0 keeps the platform default; output is invariant in it).
	LockShards int
	// SharedStore stores file bytes in the pre-striping shared store
	// (the oracle layout; output is byte-identical either way).
	SharedStore bool
	// StoreData materializes file bytes (implied by Verify).
	StoreData bool
	// Verify checks MPI atomicity on the resulting file content.
	Verify bool
	// Trace records a per-phase virtual-time breakdown.
	Trace bool
	// TraceEvents records the structured virtual-time event stream and the
	// metrics registry (Result.Events / Result.Metrics).
	TraceEvents bool
	// TraceLimit bounds per-actor event memory when TraceEvents is on
	// (> 0 ring of newest events, 0 unbounded, < 0 metrics only).
	TraceLimit int
	// AtomicListIO grants the file system atomic vectored writes
	// (implied by the "listio" strategy).
	AtomicListIO bool
	// Checkpoints repeats the collective write, one fresh file per dump
	// within the same simulation (0 and 1 both mean a single write).
	Checkpoints int
	// Compute is virtual compute time advanced before each checkpoint.
	Compute time.Duration
	// Timeout overrides the run's real-time deadlock guard.
	Timeout time.Duration
}

// Option configures a Spec under construction; options that receive
// invalid input report it as an error from New.
type Option func(*Spec) error

// Platform selects the platform profile by registered name.
func Platform(name string) Option {
	return func(s *Spec) error { s.Platform = name; return nil }
}

// Array sets the global array dimensions in bytes.
func Array(m, n int) Option {
	return func(s *Spec) error {
		if m < 1 || n < 1 {
			return fmt.Errorf("atomio: array shape %dx%d must be positive", m, n)
		}
		s.M, s.N = m, n
		return nil
	}
}

// Procs sets the number of simulated MPI processes.
func Procs(p int) Option {
	return func(s *Spec) error {
		if p < 1 {
			return fmt.Errorf("atomio: process count must be positive, got %d", p)
		}
		s.Procs = p
		return nil
	}
}

// Overlap sets the number of overlapped rows/columns R.
func Overlap(r int) Option {
	return func(s *Spec) error {
		if r < 0 {
			return fmt.Errorf("atomio: overlap must be non-negative, got %d", r)
		}
		s.Overlap = r
		return nil
	}
}

// Pattern selects the partitioning pattern by name ("column", "row",
// "block", or the long forms NormalizePattern accepts).
func Pattern(name string) Option {
	return func(s *Spec) error {
		canon, err := NormalizePattern(name)
		if err != nil {
			return err
		}
		s.Pattern = canon
		return nil
	}
}

// Strategy selects the atomicity strategy by registered name.
func Strategy(name string) Option {
	return func(s *Spec) error { s.Strategy = name; return nil }
}

// Scenario selects a degraded-server scenario by registered name; the
// empty string keeps the healthy configuration.
func Scenario(name string) Option {
	return func(s *Spec) error { s.Scenario = name; return nil }
}

// Fault selects a failure-injection script by registered name; the empty
// string keeps the fault-free run. Fault decisions are pure functions of
// virtual time, so a faulted run is as reproducible as a healthy one.
func Fault(name string) Option {
	return func(s *Spec) error { s.Fault = name; return nil }
}

// Recovery enables write-ahead intent logging during the run and replay
// of fault-damaged extents after it; verified runs that healed report the
// recovered-serializable verdict.
func Recovery(on bool) Option {
	return func(s *Spec) error { s.Recovery = on; return nil }
}

// Engine selects the simulation engine by registered name ("eventloop",
// the single-threaded scheduler, or "goroutine", the one-goroutine-per-rank
// oracle); the empty string keeps the event-loop default. Reported numbers
// are byte-identical for any engine.
func Engine(name string) Option {
	return func(s *Spec) error { s.Engine = name; return nil }
}

// Servers overrides the simulated I/O-server count (0 keeps the platform
// default). Server count is a real model parameter: reported numbers
// change with it.
func Servers(n int) Option {
	return func(s *Spec) error {
		if n < 0 {
			return fmt.Errorf("atomio: servers must be non-negative, got %d", n)
		}
		s.Servers = n
		return nil
	}
}

// LockShards overrides the lock-table shard count (0 keeps the platform
// default). Reported numbers are byte-identical for any value.
func LockShards(n int) Option {
	return func(s *Spec) error {
		if n < 0 {
			return fmt.Errorf("atomio: lock shards must be non-negative, got %d", n)
		}
		s.LockShards = n
		return nil
	}
}

// SharedStore selects the pre-striping shared file store (the oracle
// layout) instead of per-server stores.
func SharedStore(on bool) Option {
	return func(s *Spec) error { s.SharedStore = on; return nil }
}

// StoreData materializes file bytes (needed for Verify; off by default so
// large arrays stay memory-flat).
func StoreData(on bool) Option {
	return func(s *Spec) error { s.StoreData = on; return nil }
}

// Verify checks MPI atomicity on the resulting file content; it implies
// StoreData.
func Verify(on bool) Option {
	return func(s *Spec) error { s.Verify = on; return nil }
}

// Trace records a per-phase virtual-time breakdown of the write.
func Trace(on bool) Option {
	return func(s *Spec) error { s.Trace = on; return nil }
}

// TraceEvents records the structured virtual-time event stream and metrics
// registry of the run. The stream is byte-identical across simulation
// engines, worker counts and lock-shard counts; export it with
// WriteTraceJSONL or WriteChromeTrace.
func TraceEvents(on bool) Option {
	return func(s *Spec) error { s.TraceEvents = on; return nil }
}

// TraceLimit bounds per-actor event memory for traced runs: n > 0 keeps
// only the newest n events per actor (ring buffer), 0 is unbounded, n < 0
// records metrics only. Large-P cells use a ring.
func TraceLimit(n int) Option {
	return func(s *Spec) error { s.TraceLimit = n; return nil }
}

// AtomicListIO grants the simulated file system the §3.2 atomic
// vectored-write capability (implied by the "listio" strategy).
func AtomicListIO(on bool) Option {
	return func(s *Spec) error { s.AtomicListIO = on; return nil }
}

// Checkpoints repeats the collective write n times, one fresh file per
// dump within the same simulation — the periodic-checkpoint workload of
// the paper's introduction.
func Checkpoints(n int) Option {
	return func(s *Spec) error {
		if n < 0 {
			return fmt.Errorf("atomio: checkpoints must be non-negative, got %d", n)
		}
		s.Checkpoints = n
		return nil
	}
}

// Compute advances every rank's clock by d of virtual compute time before
// each checkpoint dump.
func Compute(d time.Duration) Option {
	return func(s *Spec) error {
		if d < 0 {
			return fmt.Errorf("atomio: compute time must be non-negative, got %v", d)
		}
		s.Compute = d
		return nil
	}
}

// Timeout overrides the run's real-time deadlock guard (0 keeps the
// simulator default; large-P runs need more).
func Timeout(d time.Duration) Option {
	return func(s *Spec) error {
		if d < 0 {
			return fmt.Errorf("atomio: timeout must be non-negative, got %v", d)
		}
		s.Timeout = d
		return nil
	}
}

// New builds and validates a Spec from defaults plus options. Defaults are
// a laptop-scale version of the paper's measured workload: the column-wise
// overlapping write of a 1024x8192 array by 4 processes with 16 overlapped
// columns, using the graph-coloring strategy on Origin2000. Unknown
// platform, strategy, scenario or pattern names are reported with the list
// of registered names.
func New(opts ...Option) (*Spec, error) {
	s := &Spec{
		Platform: "Origin2000",
		M:        1024,
		N:        8192,
		Procs:    4,
		Overlap:  16,
		Pattern:  "column-wise",
		Strategy: "coloring",
	}
	for _, opt := range opts {
		if opt == nil {
			return nil, fmt.Errorf("atomio: nil option")
		}
		if err := opt(s); err != nil {
			return nil, err
		}
	}
	if _, err := s.experiment(); err != nil {
		return nil, err
	}
	return s, nil
}

// Run builds a Spec from the options and executes it — the one-call form
// of New followed by Spec.Run.
func Run(opts ...Option) (*Result, error) {
	s, err := New(opts...)
	if err != nil {
		return nil, err
	}
	return s.Run()
}

// Run executes the spec and returns its result.
func (s *Spec) Run() (*Result, error) {
	e, err := s.experiment()
	if err != nil {
		return nil, err
	}
	return e.Run()
}

// experiment resolves the spec's names through the registries into the
// internal experiment struct, validating every dimension.
func (s *Spec) experiment() (harness.Experiment, error) {
	var zero harness.Experiment
	prof, err := PlatformByName(s.Platform)
	if err != nil {
		return zero, err
	}
	strat, err := StrategyByName(s.Strategy)
	if err != nil {
		return zero, err
	}
	pattern, err := patternOf(s.Pattern)
	if err != nil {
		return zero, err
	}
	if s.M < 1 || s.N < 1 {
		return zero, fmt.Errorf("atomio: array shape %dx%d must be positive", s.M, s.N)
	}
	if s.Procs < 1 {
		return zero, fmt.Errorf("atomio: process count must be positive, got %d", s.Procs)
	}
	if s.Overlap < 0 {
		return zero, fmt.Errorf("atomio: overlap must be non-negative, got %d", s.Overlap)
	}
	if s.Servers < 0 || s.LockShards < 0 || s.Checkpoints < 0 {
		return zero, fmt.Errorf("atomio: servers, lock shards and checkpoints must be non-negative")
	}
	if strat.Name() == "locking" && !prof.SupportsLocking() {
		return zero, fmt.Errorf("atomio: strategy %q needs byte-range locking; platform %q has none",
			strat.Name(), prof.Name)
	}
	e := harness.Experiment{
		Platform:     prof,
		M:            s.M,
		N:            s.N,
		Procs:        s.Procs,
		Overlap:      s.Overlap,
		Pattern:      pattern,
		Strategy:     strat,
		StoreData:    s.StoreData || s.Verify,
		Verify:       s.Verify,
		Trace:        s.Trace,
		AtomicListIO: s.AtomicListIO || strat.Name() == "listio",
		LockShards:   s.LockShards,
		Servers:      s.Servers,
		SharedStore:  s.SharedStore,
		Recovery:     s.Recovery,
		TraceEvents:  s.TraceEvents,
		EventLimit:   s.TraceLimit,
		Steps:        s.Checkpoints,
		Compute:      sim.VTime(s.Compute),
		RunTimeout:   s.Timeout,
	}
	if s.Fault != "" {
		script, err := FaultByName(s.Fault)
		if err != nil {
			return zero, err
		}
		e.Faults = &script
	}
	if s.Engine != "" {
		eng, err := EngineByName(s.Engine)
		if err != nil {
			return zero, err
		}
		e.Engine = eng
	}
	if s.Scenario != "" {
		scen, err := ScenarioByName(s.Scenario)
		if err != nil {
			return zero, err
		}
		// Dry-apply the scenario so incompatibilities (an affinity override
		// on a non-affinity platform, say) surface at New, not at Run.
		cfg := prof.PFSConfig(false)
		if e.Servers > 0 {
			cfg.Servers = e.Servers
		}
		if _, err := scen.Apply(cfg); err != nil {
			return zero, err
		}
		e.Scenario = &scen
	}
	return e, nil
}

// Conflicts is the conflict structure of a spec's file views: the paper's
// P×P overlap matrix W (Figure 5) and its greedy coloring — the number of
// barrier-separated I/O phases the coloring strategy would run.
type Conflicts struct {
	// Overlaps is W: Overlaps[i][j] reports whether rank i's view
	// overlaps rank j's.
	Overlaps [][]bool
	// Colors assigns each rank its greedy color.
	Colors []int
	// Phases is the number of distinct colors (I/O phases).
	Phases int
}

// String renders W as 0/1 rows, matching the paper's Figure 6 notation.
func (c *Conflicts) String() string {
	return core.OverlapMatrix(c.Overlaps).String()
}

// Conflicts computes the spec's conflict structure without running the
// simulation.
func (s *Spec) Conflicts() (*Conflicts, error) {
	e, err := s.experiment()
	if err != nil {
		return nil, err
	}
	views, err := e.Views()
	if err != nil {
		return nil, err
	}
	w := core.BuildOverlapMatrix(views)
	colors, phases := core.GreedyColor(w)
	return &Conflicts{Overlaps: w, Colors: colors, Phases: phases}, nil
}

// Methods returns the names of the strategies the paper measures on a
// platform: locking is absent on platforms without byte-range locking.
func Methods(platformName string) ([]string, error) {
	prof, err := PlatformByName(platformName)
	if err != nil {
		return nil, err
	}
	strats := harness.Methods(prof)
	names := make([]string, len(strats))
	for i, s := range strats {
		names[i] = s.Name()
	}
	return names, nil
}

// SummarizeServerStats condenses a run's per-server statistics into the
// hot-server indicators degraded scenarios are read by.
func SummarizeServerStats(stats []ServerStats, makespan VTime) ServerStatsSummary {
	return harness.SummarizeServerStats(stats, makespan)
}

// WriteTraceJSONL writes a traced run's event stream and metrics as compact
// JSONL (schema atomio.trace/v1): a header line, one event per line in
// (T, Actor, Seq) order, and a final metrics line. The output is
// byte-identical across engines, worker counts and lock-shard counts.
func WriteTraceJSONL(w io.Writer, r *TraceRecorder) error {
	return obs.WriteJSONL(w, r)
}

// WriteChromeTrace writes a traced run's event stream in the Chrome
// trace-event JSON format, loadable in Perfetto (ui.perfetto.dev) or
// chrome://tracing; actors map to threads.
func WriteChromeTrace(w io.Writer, r *TraceRecorder) error {
	return obs.WriteChrome(w, r)
}

// NormalizePattern maps a partitioning-pattern flag value to its canonical
// name: it accepts the short flag forms (column, row, block) and the full
// names the harness prints (column-wise, row-wise, block-block). The empty
// string normalizes to the paper's measured column-wise pattern.
func NormalizePattern(name string) (string, error) {
	switch strings.TrimSpace(name) {
	case "", "column", "column-wise":
		return "column-wise", nil
	case "row", "row-wise":
		return "row-wise", nil
	case "block", "block-block":
		return "block-block", nil
	default:
		return "", fmt.Errorf("atomio: unknown pattern %q (want column, row or block)", name)
	}
}

// patternOf resolves a pattern name to the harness constant.
func patternOf(name string) (harness.Pattern, error) {
	canon, err := NormalizePattern(name)
	if err != nil {
		return 0, err
	}
	switch canon {
	case "row-wise":
		return harness.RowWise, nil
	case "block-block":
		return harness.BlockBlock, nil
	default:
		return harness.ColumnWise, nil
	}
}
