package atomio

import (
	"fmt"
	"strings"
	"sync"

	"atomio/internal/core"
	"atomio/internal/pfs/scenario"
	"atomio/internal/platform"
	"atomio/internal/sim"
	"atomio/internal/sim/des"
	"atomio/internal/sim/fault"
)

// registry is a named-constructor table shared by the strategy, platform
// and scenario registries: registration preserves insertion order (the
// paper's presentation order for the built-ins), duplicates are errors,
// and unknown-name lookups report the registered names.
type registry[T any] struct {
	kind string
	mu   sync.RWMutex
	make map[string]func() T
	// names preserves registration order for listings; error messages
	// use the same order so they stay deterministic.
	names []string
}

func newRegistry[T any](kind string) *registry[T] {
	return &registry[T]{kind: kind, make: map[string]func() T{}}
}

func (r *registry[T]) register(name string, make func() T) error {
	if strings.TrimSpace(name) == "" {
		return fmt.Errorf("atomio: empty %s name", r.kind)
	}
	if make == nil {
		return fmt.Errorf("atomio: nil %s constructor for %q", r.kind, name)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.make[name]; dup {
		return fmt.Errorf("atomio: %s %q already registered", r.kind, name)
	}
	r.make[name] = make
	r.names = append(r.names, name)
	return nil
}

func (r *registry[T]) get(name string) (T, error) {
	r.mu.RLock()
	mk, ok := r.make[name]
	r.mu.RUnlock()
	if !ok {
		var zero T
		return zero, fmt.Errorf("atomio: unknown %s %q (registered: %s)",
			r.kind, name, strings.Join(r.list(), ", "))
	}
	return mk(), nil
}

func (r *registry[T]) list() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return append([]string(nil), r.names...)
}

var (
	strategyRegistry = newRegistry[core.Strategy]("strategy")
	platformRegistry = newRegistry[Profile]("platform")
	scenarioRegistry = newRegistry[scenario.Profile]("scenario")
	engineRegistry   = newRegistry[SimEngine]("engine")
	faultRegistry    = newRegistry[fault.Script]("fault script")
)

// RegisterStrategy adds an atomicity strategy to the registry under the
// name the constructed strategy reports. Registering a name twice is an
// error, never a panic.
func RegisterStrategy(make func() core.Strategy) error {
	if make == nil {
		return fmt.Errorf("atomio: nil strategy constructor")
	}
	s := make()
	if s == nil {
		return fmt.Errorf("atomio: strategy constructor returned nil")
	}
	return strategyRegistry.register(s.Name(), make)
}

// RegisterPlatform adds a platform profile to the registry under the
// constructed profile's Table 1 name.
func RegisterPlatform(make func() Profile) error {
	if make == nil {
		return fmt.Errorf("atomio: nil platform constructor")
	}
	return platformRegistry.register(make().Name, make)
}

// RegisterScenario adds a degraded-server scenario to the registry under
// the constructed profile's name.
func RegisterScenario(make func() scenario.Profile) error {
	if make == nil {
		return fmt.Errorf("atomio: nil scenario constructor")
	}
	return scenarioRegistry.register(make().Name, make)
}

// RegisterEngine adds a simulation engine to the registry under the name
// the constructed engine reports. Engines are host-performance choices:
// every registered engine must produce byte-identical virtual results (the
// cross-engine property tests pin the built-ins to each other).
func RegisterEngine(make func() SimEngine) error {
	if make == nil {
		return fmt.Errorf("atomio: nil engine constructor")
	}
	e := make()
	if e == nil {
		return fmt.Errorf("atomio: engine constructor returned nil")
	}
	return engineRegistry.register(e.Name(), make)
}

// RegisterFault adds a named failure-injection script to the registry
// under the constructed script's name. Scripts are pure data: the
// constructor is re-run per lookup, so callers may mutate their copy.
func RegisterFault(make func() fault.Script) error {
	if make == nil {
		return fmt.Errorf("atomio: nil fault-script constructor")
	}
	return faultRegistry.register(make().Name, make)
}

// StrategyByName returns a fresh instance of the registered strategy; an
// unknown name is reported with the registered names.
func StrategyByName(name string) (core.Strategy, error) {
	return strategyRegistry.get(name)
}

// PlatformByName returns the registered platform profile by Table 1 name.
func PlatformByName(name string) (Profile, error) {
	return platformRegistry.get(name)
}

// ScenarioByName returns the registered degraded-server scenario profile.
func ScenarioByName(name string) (scenario.Profile, error) {
	return scenarioRegistry.get(name)
}

// EngineByName returns a fresh instance of the registered simulation engine.
func EngineByName(name string) (SimEngine, error) {
	return engineRegistry.get(name)
}

// FaultByName returns a fresh copy of the registered failure-injection
// script.
func FaultByName(name string) (fault.Script, error) {
	return faultRegistry.get(name)
}

// Strategies lists the registered strategy names in registration order.
func Strategies() []string { return strategyRegistry.list() }

// Platforms lists the registered platform names in registration order
// (the paper's Table 1 order for the built-ins).
func Platforms() []string { return platformRegistry.list() }

// Scenarios lists the registered scenario names in registration order.
func Scenarios() []string { return scenarioRegistry.list() }

// Engines lists the registered engine names in registration order (the
// event-loop default first, then the goroutine oracle).
func Engines() []string { return engineRegistry.list() }

// Faults lists the registered fault-script names in registration order.
func Faults() []string { return faultRegistry.list() }

// Profiles returns every registered platform profile in registration
// order.
func Profiles() []Profile {
	names := Platforms()
	out := make([]Profile, 0, len(names))
	for _, name := range names {
		p, err := PlatformByName(name)
		if err != nil {
			continue
		}
		out = append(out, p)
	}
	return out
}

// The built-ins: the paper's strategies (plus the §3.2 listio and the
// two-phase collective-buffering extensions), the Table 1 platforms, the
// degraded-server scenarios the scenario grid sweeps, the simulation
// engines, and the named failure-injection scripts the fault fleet draws
// from.
func init() {
	must := func(err error) {
		if err != nil {
			panic(err)
		}
	}
	for _, mk := range []func() core.Strategy{
		func() core.Strategy { return core.Locking{} },
		func() core.Strategy { return core.Coloring{} },
		func() core.Strategy { return core.RankOrder{} },
		func() core.Strategy { return core.ListIO{} },
		func() core.Strategy { return core.TwoPhase{} },
	} {
		must(RegisterStrategy(mk))
	}
	for _, mk := range []func() Profile{
		platform.Cplant, platform.Origin2000, platform.IBMSP,
	} {
		must(RegisterPlatform(mk))
	}
	must(RegisterScenario(scenario.Healthy))
	must(RegisterScenario(func() scenario.Profile { return scenario.SlowServer(0, 4) }))
	must(RegisterScenario(func() scenario.Profile { return scenario.HotSpot(0, 12) }))
	must(RegisterScenario(func() scenario.Profile { return scenario.Rebalance(6) }))
	must(RegisterEngine(func() SimEngine { return des.New() }))
	must(RegisterEngine(func() SimEngine { return sim.Goroutines{} }))
	for _, mk := range []func() fault.Script{
		fault.ServerOutage, fault.ServerBlip, fault.UnlockDropLease,
		fault.UnlockDupScript, fault.LockReorder, fault.WriterCrashEarly,
	} {
		must(RegisterFault(mk))
	}
}
