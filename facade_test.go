package atomio

import (
	"reflect"
	"strings"
	"testing"
	"time"

	"atomio/internal/core"
	"atomio/internal/harness"
	"atomio/internal/pfs/scenario"
	"atomio/internal/runner"
)

// TestNewDefaults pins the documented defaults and their validity.
func TestNewDefaults(t *testing.T) {
	s, err := New()
	if err != nil {
		t.Fatal(err)
	}
	want := &Spec{
		Platform: "Origin2000", M: 1024, N: 8192, Procs: 4, Overlap: 16,
		Pattern: "column-wise", Strategy: "coloring",
	}
	if !reflect.DeepEqual(s, want) {
		t.Errorf("defaults = %+v, want %+v", s, want)
	}
}

// TestNewValidation tables the rejected option combinations; every error
// must identify the offending input.
func TestNewValidation(t *testing.T) {
	cases := []struct {
		name string
		opts []Option
		want string // substring of the error
	}{
		{"unknown platform", []Option{Platform("VAX")}, `unknown platform "VAX"`},
		{"unknown strategy", []Option{Strategy("two-phase")}, `unknown strategy "two-phase"`},
		{"unknown scenario", []Option{Scenario("meltdown")}, `unknown scenario "meltdown"`},
		{"unknown pattern", []Option{Pattern("diagonal")}, `unknown pattern "diagonal"`},
		{"bad array", []Option{Array(0, 8)}, "must be positive"},
		{"bad procs", []Option{Procs(0)}, "must be positive"},
		{"bad overlap", []Option{Overlap(-1)}, "non-negative"},
		{"bad servers", []Option{Servers(-1)}, "non-negative"},
		{"bad lock shards", []Option{LockShards(-1)}, "non-negative"},
		{"bad checkpoints", []Option{Checkpoints(-1)}, "non-negative"},
		{"bad compute", []Option{Compute(-time.Second)}, "non-negative"},
		{"bad timeout", []Option{Timeout(-time.Second)}, "non-negative"},
		{"nil option", []Option{nil}, "nil option"},
		{"locking on Cplant", []Option{Platform("Cplant"), Strategy("locking")}, "has none"},
		{"affinity scenario off-platform",
			[]Option{Platform("Origin2000"), Scenario("hotspot0")}, "client-affinity"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := New(tc.opts...); err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("New(%s) error = %v, want substring %q", tc.name, err, tc.want)
			}
		})
	}
}

// TestUnknownNamesListRegistered checks the registry hygiene contract:
// unknown names are reported together with every registered name.
func TestUnknownNamesListRegistered(t *testing.T) {
	if _, err := StrategyByName("osmosis"); err == nil ||
		!strings.Contains(err.Error(), "locking, coloring, ordering, listio, twophase") {
		t.Errorf("StrategyByName error = %v, want registered list", err)
	}
	if _, err := PlatformByName("VAX"); err == nil ||
		!strings.Contains(err.Error(), "Cplant, Origin2000, IBM SP") {
		t.Errorf("PlatformByName error = %v, want registered list", err)
	}
	if _, err := ScenarioByName("meltdown"); err == nil ||
		!strings.Contains(err.Error(), "healthy, slow0x4, hotspot0, servers6") {
		t.Errorf("ScenarioByName error = %v, want registered list", err)
	}
}

// TestRegisterDuplicate checks duplicate registration returns an error
// (never a panic), for all three registries.
func TestRegisterDuplicate(t *testing.T) {
	if err := RegisterStrategy(func() core.Strategy { return core.Locking{} }); err == nil ||
		!strings.Contains(err.Error(), "already registered") {
		t.Errorf("duplicate strategy: err = %v", err)
	}
	if err := RegisterPlatform(func() Profile { return Profile{Name: "Cplant"} }); err == nil ||
		!strings.Contains(err.Error(), "already registered") {
		t.Errorf("duplicate platform: err = %v", err)
	}
	if err := RegisterScenario(scenario.Healthy); err == nil ||
		!strings.Contains(err.Error(), "already registered") {
		t.Errorf("duplicate scenario: err = %v", err)
	}
	if err := RegisterStrategy(nil); err == nil {
		t.Error("nil strategy constructor: want error")
	}
	if err := RegisterPlatform(func() Profile { return Profile{} }); err == nil {
		t.Error("empty platform name: want error")
	}
}

// TestDegradedScenarioNamesRegistered guards against the scenario registry
// drifting from the degraded grid's scenario set.
func TestDegradedScenarioNamesRegistered(t *testing.T) {
	for _, scen := range runner.DegradedScenarios() {
		got, err := ScenarioByName(scen.Name)
		if err != nil {
			t.Errorf("scenario %q of the degraded grid is not registered: %v", scen.Name, err)
			continue
		}
		if !reflect.DeepEqual(got, scen) {
			t.Errorf("registered scenario %q = %+v, want the degraded grid's %+v", scen.Name, got, scen)
		}
	}
}

// TestFigure8MatchesRunner pins the facade's Figure 8 grid to the
// pre-redesign runner definition, cell for cell — the structural half of
// the byte-identical-output contract.
func TestFigure8MatchesRunner(t *testing.T) {
	cells, err := Figure8().Cells()
	if err != nil {
		t.Fatal(err)
	}
	want := runner.Figure8Grid().Cells()
	if !reflect.DeepEqual(cells, want) {
		t.Fatalf("facade Figure 8 cells differ from runner.Figure8Grid().Cells()")
	}
	for _, f := range []struct {
		name  string
		cells []Cell
		want  []Cell
	}{
		{"Scaling", Scaling(), runner.ScalingGrid()},
		{"ShardSweep", ShardSweep(), runner.ShardSweepGrid()},
		{"Degraded", Degraded(), runner.DegradedGrid()},
	} {
		if !reflect.DeepEqual(f.cells, f.want) {
			t.Errorf("facade %s cells differ from the runner grid", f.name)
		}
	}
}

// TestGridFacadeByteIdentical runs one small grid twice — hand-wired
// runner structs versus the facade's name-resolved grid — and requires
// identical records modulo wall-clock time.
func TestGridFacadeByteIdentical(t *testing.T) {
	facade := Grid{
		Platforms:  []string{"Origin2000", "IBM SP"},
		Sizes:      []Size{{M: 128, N: 1024}},
		Procs:      []int{2, 4},
		Overlap:    8,
		Pattern:    "column",
		Strategies: []string{"locking", "ordering"},
	}
	cells, err := facade.Cells()
	if err != nil {
		t.Fatal(err)
	}
	o2k, _ := PlatformByName("Origin2000")
	sp, _ := PlatformByName("IBM SP")
	locking, _ := core.ByName("locking")
	ordering, _ := core.ByName("ordering")
	wired := runner.Grid{
		Platforms:  []Profile{o2k, sp},
		Sizes:      []Size{{M: 128, N: 1024}},
		Procs:      []int{2, 4},
		Overlap:    8,
		Pattern:    harness.ColumnWise,
		Strategies: []core.Strategy{locking, ordering},
	}.Cells()

	got := Records(RunGrid(cells, RunOptions{Workers: 2}))
	want := Records(runner.Run(wired, runner.Options{Workers: 1}))
	for i := range got {
		got[i].WallNS = 0
		want[i].WallNS = 0
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("facade-driven records differ from hand-wired records:\n got %+v\nwant %+v", got, want)
	}
}

// TestSpecRunMatchesHarness runs the same experiment through the facade
// and through a hand-wired harness.Experiment.
func TestSpecRunMatchesHarness(t *testing.T) {
	res, err := Run(
		Platform("IBM SP"), Array(128, 1024), Procs(4), Overlap(8), Strategy("coloring"),
	)
	if err != nil {
		t.Fatal(err)
	}
	prof, _ := PlatformByName("IBM SP")
	want, err := harness.Experiment{
		Platform: prof, M: 128, N: 1024, Procs: 4, Overlap: 8,
		Pattern: harness.ColumnWise, Strategy: core.Coloring{},
	}.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan != want.Makespan || res.BandwidthMBs != want.BandwidthMBs ||
		res.WrittenBytes != want.WrittenBytes {
		t.Errorf("facade result %v/%v/%v, hand-wired %v/%v/%v",
			res.Makespan, res.BandwidthMBs, res.WrittenBytes,
			want.Makespan, want.BandwidthMBs, want.WrittenBytes)
	}
}

// TestCheckpointsRun exercises the multi-dump experiment: deterministic,
// IOTime below the makespan, compute time excluded from IOTime.
func TestCheckpointsRun(t *testing.T) {
	opts := []Option{
		Platform("Cplant"), Array(128, 1024), Procs(4), Overlap(8), Strategy("ordering"),
		Checkpoints(3), Compute(10 * time.Millisecond),
	}
	res, err := Run(opts...)
	if err != nil {
		t.Fatal(err)
	}
	if res.ArrayBytes != 3*128*1024 {
		t.Errorf("ArrayBytes = %d, want %d (3 dumps)", res.ArrayBytes, 3*128*1024)
	}
	if res.IOTime <= 0 || res.IOTime >= res.Makespan {
		t.Errorf("IOTime %v out of range (makespan %v)", res.IOTime, res.Makespan)
	}
	if res.Makespan < VTime(30*time.Millisecond) {
		t.Errorf("makespan %v does not cover 3x10ms of compute", res.Makespan)
	}
	again, err := Run(opts...)
	if err != nil {
		t.Fatal(err)
	}
	if again.Makespan != res.Makespan || again.IOTime != res.IOTime {
		t.Errorf("checkpoint run is nondeterministic: %v/%v vs %v/%v",
			res.Makespan, res.IOTime, again.Makespan, again.IOTime)
	}

	// Verify covers every dump, not just the last one.
	verified, err := Run(append(opts, Verify(true))...)
	if err != nil {
		t.Fatal(err)
	}
	if verified.Report == nil || !verified.Report.Atomic() {
		t.Errorf("verified checkpoint run: report = %+v", verified.Report)
	}
	if verified.Report.Atoms == 0 {
		t.Error("verified checkpoint run examined no overlapped atoms")
	}
}

// TestConflicts checks the facade's conflict analysis against the core
// layer on the ghost-cell pattern.
func TestConflicts(t *testing.T) {
	spec, err := New(Array(96, 96), Procs(9), Overlap(4), Pattern("block"))
	if err != nil {
		t.Fatal(err)
	}
	c, err := spec.Conflicts()
	if err != nil {
		t.Fatal(err)
	}
	e, err := spec.experiment()
	if err != nil {
		t.Fatal(err)
	}
	views, err := e.Views()
	if err != nil {
		t.Fatal(err)
	}
	w := core.BuildOverlapMatrix(views)
	if !reflect.DeepEqual(c.Overlaps, [][]bool(w)) {
		t.Error("Conflicts.Overlaps differs from core.BuildOverlapMatrix")
	}
	colors, phases := core.GreedyColor(w)
	if !reflect.DeepEqual(c.Colors, colors) || c.Phases != phases {
		t.Errorf("coloring = %v/%d, want %v/%d", c.Colors, c.Phases, colors, phases)
	}
	if c.String() != w.String() {
		t.Error("Conflicts.String differs from the matrix rendering")
	}
	if c.Phases != 4 {
		t.Errorf("3x3 ghost grid colors = %d phases, want 4", c.Phases)
	}
}

// TestMethods pins the per-platform strategy sets.
func TestMethods(t *testing.T) {
	cases := map[string][]string{
		"Cplant":     {"coloring", "ordering"},
		"Origin2000": {"locking", "coloring", "ordering"},
		"IBM SP":     {"locking", "coloring", "ordering"},
	}
	for name, want := range cases {
		got, err := Methods(name)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("Methods(%s) = %v, want %v", name, got, want)
		}
	}
	if _, err := Methods("VAX"); err == nil {
		t.Error("Methods(VAX): want error")
	}
}

// TestGridNarrowing checks WithPlatform/WithSize against unknown names.
func TestGridNarrowing(t *testing.T) {
	g, err := Figure8().WithPlatform("IBM SP")
	if err != nil {
		t.Fatal(err)
	}
	if g, err = g.WithSize("32 MB"); err != nil {
		t.Fatal(err)
	}
	cells, err := g.Cells()
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 9 { // 3 procs x 3 strategies
		t.Errorf("narrowed grid has %d cells, want 9", len(cells))
	}
	for _, c := range cells {
		if !strings.HasPrefix(c.ID, "IBM SP/32 MB/") {
			t.Errorf("unexpected cell %s", c.ID)
		}
	}
	if _, err := Figure8().WithPlatform("VAX"); err == nil {
		t.Error("WithPlatform(VAX): want error")
	}
	if _, err := Figure8().WithSize("2 GB"); err == nil {
		t.Error("WithSize(2 GB): want error")
	}
}

// TestScenarioSpecRun checks a degraded scenario resolves by name and
// reports per-server stats.
func TestScenarioSpecRun(t *testing.T) {
	res, err := Run(
		Platform("Cplant"), Array(64, 512), Procs(4), Overlap(8), Strategy("ordering"),
		Scenario("slow0x4"),
	)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.ServerStats) == 0 {
		t.Fatal("no server stats")
	}
	healthy, err := Run(
		Platform("Cplant"), Array(64, 512), Procs(4), Overlap(8), Strategy("ordering"),
	)
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan <= healthy.Makespan {
		t.Errorf("slow-server makespan %v not above healthy %v", res.Makespan, healthy.Makespan)
	}
}
