package atomio

import (
	"bytes"
	"flag"
	"go/ast"
	"go/parser"
	"go/printer"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

var updateAPI = flag.Bool("update", false, "rewrite testdata/api.txt from the current sources")

const apiGolden = "testdata/api.txt"

// TestAPISurface pins the facade's exported identifiers — types (with
// their exported shape), functions, methods, constants and variables — to
// a golden file, so an accidental breaking change to the public API fails
// CI instead of shipping silently. Intentional API changes regenerate the
// file with `go test -run TestAPISurface -update .` and show up in review
// as a diff of testdata/api.txt.
func TestAPISurface(t *testing.T) {
	got := strings.Join(apiSurface(t), "\n") + "\n"
	if *updateAPI {
		if err := os.MkdirAll(filepath.Dir(apiGolden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(apiGolden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(apiGolden)
	if err != nil {
		t.Fatalf("missing golden file (run `go test -run TestAPISurface -update .`): %v", err)
	}
	if got != string(want) {
		t.Errorf("exported API surface changed; if intentional, regenerate with `go test -run TestAPISurface -update .`\n--- %s\n+++ current\n%s",
			apiGolden, diffLines(string(want), got))
	}
}

// apiSurface renders every exported identifier of the package's non-test
// files as one sorted line each.
func apiSurface(t *testing.T) []string {
	t.Helper()
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, ".", func(fi fs.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	pkg, ok := pkgs["atomio"]
	if !ok {
		t.Fatal("package atomio not found")
	}
	render := func(node any) string {
		var buf bytes.Buffer
		if err := printer.Fprint(&buf, fset, node); err != nil {
			t.Fatal(err)
		}
		// Collapse struct bodies and multi-line signatures to one line.
		return strings.Join(strings.Fields(buf.String()), " ")
	}
	var lines []string
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if !d.Name.IsExported() {
					continue
				}
				sig := strings.TrimPrefix(render(d.Type), "func")
				if d.Recv != nil {
					recv := d.Recv.List[0].Type
					// Skip methods on unexported receivers.
					name := recv
					if star, ok := recv.(*ast.StarExpr); ok {
						name = star.X
					}
					if ident, ok := name.(*ast.Ident); ok && !ident.IsExported() {
						continue
					}
					lines = append(lines, "func ("+render(recv)+") "+d.Name.Name+sig)
					continue
				}
				lines = append(lines, "func "+d.Name.Name+sig)
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					switch s := spec.(type) {
					case *ast.TypeSpec:
						if s.Name.IsExported() {
							lines = append(lines, "type "+render(s))
						}
					case *ast.ValueSpec:
						for _, name := range s.Names {
							if name.IsExported() {
								kw := "var"
								if d.Tok == token.CONST {
									kw = "const"
								}
								lines = append(lines, kw+" "+name.Name)
							}
						}
					}
				}
			}
		}
	}
	sort.Strings(lines)
	return lines
}

// diffLines renders a minimal line diff for the failure message.
func diffLines(want, got string) string {
	wantSet := map[string]bool{}
	for _, l := range strings.Split(want, "\n") {
		wantSet[l] = true
	}
	gotSet := map[string]bool{}
	for _, l := range strings.Split(got, "\n") {
		gotSet[l] = true
	}
	var b strings.Builder
	for _, l := range strings.Split(want, "\n") {
		if l != "" && !gotSet[l] {
			b.WriteString("- " + l + "\n")
		}
	}
	for _, l := range strings.Split(got, "\n") {
		if l != "" && !wantSet[l] {
			b.WriteString("+ " + l + "\n")
		}
	}
	return b.String()
}
